//! SimSan negative-test suite: five deliberately buggy kernels, each
//! caught with the correct [`SanitizerKind`], each paired with a clean
//! twin proving the diagnostic does not fire on the correct version of
//! the same access pattern.

use gpu_sim::{Device, DeviceMem, KernelConfig, SanitizerKind, SimError};

fn sanitized() -> Device {
    Device::v100().with_sanitizer()
}

fn expect_kind(err: SimError, want: SanitizerKind) -> (String, usize, Option<u32>) {
    match err {
        SimError::Sanitizer {
            kind,
            buffer,
            word,
            lane,
            ..
        } => {
            assert_eq!(kind, want, "wrong sanitizer kind");
            (buffer, word, lane)
        }
        other => panic!("expected Sanitizer({want}), got {other}"),
    }
}

// --- 1. uninit read (global) ---------------------------------------------

#[test]
fn reading_an_uninit_global_word_is_caught() {
    let dev = sanitized();
    let mut mem = DeviceMem::new(&dev);
    let buf = mem.alloc_uninit(64, "scratch").unwrap();
    let sink = mem.alloc_zeroed(64, "sink").unwrap();
    let err = dev
        .launch(&mem, KernelConfig::new(1, 32), |blk| {
            blk.phase(|lane| {
                // Bug: consumes `scratch` before anything defined it.
                let v = lane.ld_global(buf, lane.tid() as usize);
                lane.st_global(sink, lane.tid() as usize, v);
            });
        })
        .unwrap_err();
    let (buffer, word, lane) = expect_kind(err, SanitizerKind::UninitRead);
    assert_eq!(buffer, "scratch");
    assert_eq!(word, 0);
    assert_eq!(lane, Some(0));
}

#[test]
fn clean_twin_writes_before_reading_uninit_memory() {
    let dev = sanitized();
    let mut mem = DeviceMem::new(&dev);
    let buf = mem.alloc_uninit(64, "scratch").unwrap();
    let sink = mem.alloc_zeroed(64, "sink").unwrap();
    let stats = dev
        .launch(&mem, KernelConfig::new(1, 32), |blk| {
            blk.phase(|lane| {
                lane.st_global(buf, lane.tid() as usize, lane.tid());
            });
            blk.phase(|lane| {
                let v = lane.ld_global(buf, lane.tid() as usize);
                lane.st_global(sink, lane.tid() as usize, v);
            });
        })
        .unwrap();
    assert!(stats.counters.sanitizer_checks > 0);
    assert_eq!(stats.counters.sanitizer_reports, 0);
    assert_eq!(mem.read_back(sink)[5], 5);
}

// --- 2. use-after-free through a reused extent ---------------------------

#[test]
fn dangling_read_after_extent_reuse_is_caught() {
    let dev = sanitized();
    let mut mem = DeviceMem::new(&dev);
    let stale = mem.alloc_from_slice(&[7; 64], "old").unwrap();
    mem.free(stale).unwrap();
    // Same-size allocation lands on the freed extent: without the
    // sanitizer, the stale handle would silently read `new`'s bytes.
    let fresh = mem.alloc_from_slice(&[9; 64], "new").unwrap();
    assert_eq!(mem.read_back(fresh)[0], 9);
    let err = dev
        .launch(&mem, KernelConfig::new(1, 32), |blk| {
            blk.phase(|lane| {
                lane.ld_global(stale, lane.tid() as usize);
            });
        })
        .unwrap_err();
    let (buffer, _, lane) = expect_kind(err, SanitizerKind::UseAfterFree);
    assert_eq!(buffer, "old (freed)");
    assert_eq!(lane, Some(0));
}

#[test]
fn clean_twin_uses_the_live_handle_for_the_reused_extent() {
    let dev = sanitized();
    let mut mem = DeviceMem::new(&dev);
    let stale = mem.alloc_from_slice(&[7; 64], "old").unwrap();
    mem.free(stale).unwrap();
    let fresh = mem.alloc_from_slice(&[9; 64], "new").unwrap();
    let sink = mem.alloc_zeroed(1, "sink").unwrap();
    let stats = dev
        .launch(&mem, KernelConfig::new(1, 32), |blk| {
            blk.phase(|lane| {
                let v = lane.ld_global(fresh, lane.tid() as usize);
                lane.atomic_add_global(sink, 0, v);
            });
        })
        .unwrap();
    assert_eq!(stats.counters.sanitizer_reports, 0);
    assert_eq!(mem.read_back(sink)[0], 32 * 9);
}

// --- 3. redzone / padding probe ------------------------------------------

#[test]
fn off_by_one_into_alignment_padding_is_caught_as_redzone() {
    let dev = sanitized();
    let mut mem = DeviceMem::new(&dev);
    // 60 words pad to a 64-word extent: words 60..64 are redzone.
    let buf = mem.alloc_zeroed(60, "counts").unwrap();
    let err = dev
        .launch(&mem, KernelConfig::new(1, 32), |blk| {
            blk.phase(|lane| {
                if lane.tid() == 0 {
                    // The classic off-by-one: index == len.
                    lane.st_global(buf, 60, 1);
                }
            });
        })
        .unwrap_err();
    let (buffer, word, lane) = expect_kind(err, SanitizerKind::Redzone);
    assert_eq!(buffer, "counts");
    assert_eq!(word, 60);
    assert_eq!(lane, Some(0));
}

#[test]
fn clean_twin_stays_inside_the_buffer_and_far_oob_is_a_memory_fault() {
    let dev = sanitized();
    let mut mem = DeviceMem::new(&dev);
    let buf = mem.alloc_zeroed(60, "counts").unwrap();
    let stats = dev
        .launch(&mem, KernelConfig::new(1, 32), |blk| {
            blk.phase(|lane| {
                lane.st_global(buf, 59, 1);
            });
        })
        .unwrap();
    assert_eq!(stats.counters.sanitizer_reports, 0);
    // Past the padding is a wild access, not a redzone hit: the plain
    // bounds check owns the diagnostic even with the sanitizer on.
    let err = dev
        .launch(&mem, KernelConfig::new(1, 32), |blk| {
            blk.phase(|lane| {
                lane.ld_global(buf, 10_000 + lane.tid() as usize);
            });
        })
        .unwrap_err();
    assert!(matches!(err, SimError::MemoryFault { .. }), "got {err}");
}

// --- 4. double-free -------------------------------------------------------

#[test]
fn double_free_is_caught_and_single_free_is_not() {
    let dev = sanitized();
    let mut mem = DeviceMem::new(&dev);
    let buf = mem.alloc_zeroed(16, "tmp").unwrap();
    mem.free(buf).unwrap(); // clean twin: the first free succeeds
    let err = mem.free(buf).unwrap_err();
    let (buffer, _, lane) = expect_kind(err, SanitizerKind::DoubleFree);
    assert_eq!(buffer, "tmp (freed)");
    assert_eq!(lane, None);
}

// --- 5. dangling copy-back ------------------------------------------------

#[test]
fn copy_back_through_a_freed_handle_is_caught() {
    let dev = sanitized();
    let mut mem = DeviceMem::new(&dev);
    let result = mem.alloc_from_slice(&[41, 42], "result").unwrap();
    mem.free(result).unwrap();
    // Reuse the extent so the dangling copy-back would otherwise observe
    // unrelated live data.
    let _other = mem.alloc_from_slice(&[1, 2], "other").unwrap();
    let err = mem.try_read_back(result).unwrap_err();
    let (buffer, _, lane) = expect_kind(err, SanitizerKind::UseAfterFree);
    assert_eq!(buffer, "result (freed)");
    assert_eq!(lane, None);
}

#[test]
fn clean_twin_copies_back_before_freeing() {
    let dev = sanitized();
    let mut mem = DeviceMem::new(&dev);
    let result = mem.alloc_from_slice(&[41, 42], "result").unwrap();
    assert_eq!(mem.try_read_back(result).unwrap(), vec![41, 42]);
    mem.free(result).unwrap();
    assert!(mem.leak_check().is_ok());
}

// --- shared memory: uninit reads CUDA would see as garbage ----------------

#[test]
fn reading_unwritten_shared_memory_is_caught() {
    let dev = sanitized();
    let mut mem = DeviceMem::new(&dev);
    let sink = mem.alloc_zeroed(32, "sink").unwrap();
    let err = dev
        .launch(
            &mem,
            KernelConfig::new(1, 32).with_shared_words(64),
            |blk| {
                blk.phase(|lane| {
                    // Bug: the simulator zero-fills shared memory, real
                    // hardware does not — this read is garbage on a GPU.
                    let v = lane.ld_shared(lane.tid() as usize);
                    lane.st_global(sink, lane.tid() as usize, v);
                });
            },
        )
        .unwrap_err();
    let (buffer, word, lane) = expect_kind(err, SanitizerKind::UninitRead);
    assert_eq!(buffer, "shared");
    assert_eq!(word, 0);
    assert_eq!(lane, Some(0));
}

#[test]
fn clean_twin_initializes_shared_before_the_barrier() {
    let dev = sanitized();
    let mut mem = DeviceMem::new(&dev);
    let sink = mem.alloc_zeroed(32, "sink").unwrap();
    let stats = dev
        .launch(
            &mem,
            KernelConfig::new(1, 32).with_shared_words(64),
            |blk| {
                blk.phase(|lane| {
                    lane.st_shared(lane.tid() as usize, lane.tid() + 1);
                });
                blk.phase(|lane| {
                    let v = lane.ld_shared(lane.tid() as usize);
                    lane.st_global(sink, lane.tid() as usize, v);
                });
            },
        )
        .unwrap();
    assert!(stats.counters.sanitizer_checks > 0);
    assert_eq!(stats.counters.sanitizer_reports, 0);
    assert_eq!(mem.read_back(sink)[31], 32);
}

// --- toggles and counters -------------------------------------------------

#[test]
fn sanitizer_is_off_by_default_and_toggles_per_launch() {
    let dev = Device::v100();
    let mut mem = DeviceMem::new(&dev);
    let buf = mem.alloc_uninit(32, "raw").unwrap();
    // Off: the uninit read sails through (deterministic garbage).
    let stats = dev
        .launch(&mem, KernelConfig::new(1, 32), |blk| {
            blk.phase(|lane| {
                lane.ld_global(buf, lane.tid() as usize);
            });
        })
        .unwrap();
    assert_eq!(stats.counters.sanitizer_checks, 0);
    // On (per launch): the same kernel is refused.
    let err = dev
        .launch(&mem, KernelConfig::new(1, 32).with_sanitizer(true), |blk| {
            blk.phase(|lane| {
                lane.ld_global(buf, lane.tid() as usize);
            });
        })
        .unwrap_err();
    expect_kind(err, SanitizerKind::UninitRead);
}

#[test]
fn reports_poison_only_the_faulting_block() {
    let dev = sanitized();
    let mut mem = DeviceMem::new(&dev);
    let raw = mem.alloc_uninit(4, "raw").unwrap();
    let counts = mem.alloc_zeroed(4, "counts").unwrap();
    // Block 2 trips the sanitizer; the healthy blocks' work must land,
    // exactly like the MemoryFault / DataRace poisoning contract.
    let err = dev
        .launch(&mem, KernelConfig::new(4, 32), |blk| {
            let b = blk.block_idx() as usize;
            blk.phase(move |lane| {
                if lane.tid() == 0 {
                    if lane.block_idx() == 2 {
                        lane.ld_global(raw, 0);
                        lane.atomic_add_global(counts, b, 1); // dropped
                    } else {
                        lane.atomic_add_global(counts, b, 1);
                    }
                }
            });
        })
        .unwrap_err();
    expect_kind(err, SanitizerKind::UninitRead);
    assert_eq!(mem.read_back(counts), vec![1, 1, 0, 1]);
}
