/root/repo/target/debug/deps/fig12-0636b4e27e32f6ff.d: crates/tc-bench/src/bin/fig12.rs Cargo.toml

/root/repo/target/debug/deps/libfig12-0636b4e27e32f6ff.rmeta: crates/tc-bench/src/bin/fig12.rs Cargo.toml

crates/tc-bench/src/bin/fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
