/root/repo/target/debug/deps/fig15-a4efbd177c0bc28f.d: crates/tc-bench/src/bin/fig15.rs

/root/repo/target/debug/deps/fig15-a4efbd177c0bc28f: crates/tc-bench/src/bin/fig15.rs

crates/tc-bench/src/bin/fig15.rs:
