/root/repo/target/debug/deps/fig13b-0f94bf3d382eccbc.d: crates/tc-bench/src/bin/fig13b.rs

/root/repo/target/debug/deps/fig13b-0f94bf3d382eccbc: crates/tc-bench/src/bin/fig13b.rs

crates/tc-bench/src/bin/fig13b.rs:
