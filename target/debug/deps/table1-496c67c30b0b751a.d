/root/repo/target/debug/deps/table1-496c67c30b0b751a.d: crates/tc-bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-496c67c30b0b751a: crates/tc-bench/src/bin/table1.rs

crates/tc-bench/src/bin/table1.rs:
