//! Global clustering coefficient of a social network — one of the
//! motivating applications in the paper's introduction.
//!
//! The coefficient is `3 * triangles / wedges`; triangles come from a
//! GPU counter, wedges (`sum over v of C(deg(v), 2)`) from the degree
//! sequence.
//!
//! ```sh
//! cargo run --release --example clustering_coefficient [dataset-name]
//! ```

use tc_compare::algos::{DeviceGraph, TcAlgorithm};
use tc_compare::core::GroupTc;
use tc_compare::graph::{orient, DatasetSpec, Orientation};
use tc_compare::sim::{Device, DeviceMem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Com-Dblp".to_string());
    let spec = DatasetSpec::by_name(&name)
        .ok_or_else(|| format!("unknown dataset `{name}` (see Table II)"))?;
    eprintln!("building {} stand-in...", spec.name);
    let graph = spec.build();

    // Wedges from the degree sequence.
    let wedges: u64 = (0..graph.num_vertices())
        .map(|v| {
            let d = graph.degree(v) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();

    // Triangles on the simulated GPU.
    let dag = orient(&graph, Orientation::DegreeAsc);
    let device = Device::v100();
    let mut mem = DeviceMem::new(&device);
    let dev_graph = DeviceGraph::upload(&dag, &mut mem)?;
    let result = GroupTc::default().count(&device, &mut mem, &dev_graph)?;

    let coefficient = if wedges == 0 {
        0.0
    } else {
        3.0 * result.triangles as f64 / wedges as f64
    };
    println!("dataset:               {}", spec.name);
    println!(
        "vertices / edges:      {} / {}",
        graph.num_vertices(),
        graph.num_edges()
    );
    println!("triangles:             {}", result.triangles);
    println!("wedges:                {wedges}");
    println!("clustering coefficient: {coefficient:.4}");
    Ok(())
}
