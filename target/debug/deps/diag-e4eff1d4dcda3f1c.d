/root/repo/target/debug/deps/diag-e4eff1d4dcda3f1c.d: crates/tc-bench/src/bin/diag.rs

/root/repo/target/debug/deps/diag-e4eff1d4dcda3f1c: crates/tc-bench/src/bin/diag.rs

crates/tc-bench/src/bin/diag.rs:
