/root/repo/target/debug/examples/algorithm_comparison-1d04a0067b09722d.d: examples/algorithm_comparison.rs

/root/repo/target/debug/examples/algorithm_comparison-1d04a0067b09722d: examples/algorithm_comparison.rs

examples/algorithm_comparison.rs:
