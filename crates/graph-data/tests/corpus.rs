//! The malformed-fixture corpus: every file under `tests/corpus/` is a
//! deliberately broken input in one of the four supported formats
//! (SNAP text, binary edges, CSR, MatrixMarket). The hardened loaders
//! must reject each with a structured `io::Error` — never a panic, and
//! never a silently wrong edge list. CI runs this as part of the
//! `partitioned` job; adding a new breakage class is just dropping a
//! file in the directory.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use graph_data::io::read_edges_auto;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn every_corpus_fixture_errors_without_panicking() {
    let mut fixtures: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.is_file())
        .collect();
    fixtures.sort();
    assert!(
        fixtures.len() >= 14,
        "corpus should hold the full breakage matrix, found {}",
        fixtures.len()
    );

    let mut covered_ext = std::collections::BTreeSet::new();
    for path in &fixtures {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        covered_ext.insert(path.extension().unwrap().to_string_lossy().into_owned());
        let bytes = std::fs::read(path).expect("fixture readable");
        // The loader must return Err — and must do so without
        // unwinding, which is what a slice-index or allocation bug
        // would do instead.
        let result = catch_unwind(AssertUnwindSafe(|| read_edges_auto(&bytes[..])));
        match result {
            Ok(Ok(edges)) => panic!(
                "{name}: malformed fixture parsed successfully into {} edge(s)",
                edges.len()
            ),
            Ok(Err(e)) => {
                assert!(
                    !e.to_string().is_empty(),
                    "{name}: error must carry a message"
                );
            }
            Err(_) => panic!("{name}: loader panicked instead of returning Err"),
        }
    }
    // All four formats are represented: text, binary, csr, matrix
    // market.
    for ext in ["txt", "bin", "csr", "mtx"] {
        assert!(covered_ext.contains(ext), "corpus covers no .{ext} fixture");
    }
}
