/root/repo/target/debug/deps/rayon-05e7385e6726ddaa.d: crates/shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-05e7385e6726ddaa.rlib: crates/shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-05e7385e6726ddaa.rmeta: crates/shims/rayon/src/lib.rs

crates/shims/rayon/src/lib.rs:
