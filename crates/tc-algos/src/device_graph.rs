//! The oriented graph as it lives on the simulated device, plus host
//! mirrors used for launch planning (grid sizing, workload binning,
//! degree classification) — the part real implementations do on the CPU
//! before the timed kernel.

use gpu_sim::{BufId, DeviceMem, SimError};
use graph_data::DagGraph;

/// CSR + edge arrays uploaded to device memory.
#[derive(Debug)]
pub struct DeviceGraph {
    pub num_vertices: u32,
    pub num_edges: u32,
    /// CSR row offsets (`num_vertices + 1` words).
    pub row_offsets: BufId,
    /// CSR column indices (`num_edges` words), per-vertex sorted.
    pub col_indices: BufId,
    /// Edge-centric source array (CSR edge order).
    pub edge_src: BufId,
    /// Edge-centric destination array (CSR edge order).
    pub edge_dst: BufId,
    pub max_out_degree: u32,
    /// First edge index this device owns. The full graph lives on every
    /// device (each kernel may probe any adjacency list); a multi-GPU
    /// partition narrows only the *work* ranges, so at the default full
    /// range every kernel behaves — and traces — identically to a
    /// single-device run.
    pub edge_lo: u32,
    /// One past the last edge index this device owns.
    pub edge_hi: u32,
    /// First pivot vertex this device owns (vertex-centric kernels).
    pub pivot_lo: u32,
    /// One past the last pivot vertex this device owns.
    pub pivot_hi: u32,
    /// Host mirror of the offsets (launch planning only — reads of this
    /// are CPU work, not device traffic).
    pub host_offsets: Vec<u32>,
    /// Host mirror of the edge endpoints (launch planning only).
    pub host_src: Vec<u32>,
    pub host_dst: Vec<u32>,
}

impl DeviceGraph {
    /// Upload an oriented DAG. Fails with [`SimError::OutOfMemory`] when
    /// the graph alone exceeds device capacity.
    pub fn upload(dag: &DagGraph, mem: &mut DeviceMem) -> Result<Self, SimError> {
        let csr = dag.csr();
        let (src, dst) = dag.edge_arrays();
        let row_offsets = mem.alloc_from_slice(csr.offsets(), "csr.row_offsets")?;
        let col_indices = mem.alloc_from_slice(csr.targets(), "csr.col_indices")?;
        let edge_src = mem.alloc_from_slice(&src, "edges.src")?;
        let edge_dst = mem.alloc_from_slice(&dst, "edges.dst")?;
        Ok(DeviceGraph {
            num_vertices: dag.num_vertices(),
            num_edges: dag.num_edges() as u32,
            row_offsets,
            col_indices,
            edge_src,
            edge_dst,
            max_out_degree: dag.max_out_degree(),
            edge_lo: 0,
            edge_hi: dag.num_edges() as u32,
            pivot_lo: 0,
            pivot_hi: dag.num_vertices(),
            host_offsets: csr.offsets().to_vec(),
            host_src: src,
            host_dst: dst,
        })
    }

    /// Narrow this device's work to the vertices `[pivot_lo, pivot_hi)`
    /// and the edges they source, `[offsets[pivot_lo], offsets[pivot_hi])`
    /// — contiguous because the edge arrays are in CSR order. The
    /// adjacency data itself stays whole: partitioning splits work, not
    /// the graph.
    pub fn restrict_to_pivots(&mut self, pivot_lo: u32, pivot_hi: u32) {
        assert!(pivot_lo <= pivot_hi && pivot_hi <= self.num_vertices);
        self.pivot_lo = pivot_lo;
        self.pivot_hi = pivot_hi;
        self.edge_lo = self.host_offsets[pivot_lo as usize];
        self.edge_hi = self.host_offsets[pivot_hi as usize];
    }

    /// Number of edges in this device's work range.
    #[inline]
    pub fn owned_edges(&self) -> u32 {
        self.edge_hi - self.edge_lo
    }

    /// Number of pivot vertices in this device's work range.
    #[inline]
    pub fn owned_pivots(&self) -> u32 {
        self.pivot_hi - self.pivot_lo
    }

    /// Host-side out-degree (planning only).
    #[inline]
    pub fn host_out_degree(&self, v: u32) -> u32 {
        self.host_offsets[v as usize + 1] - self.host_offsets[v as usize]
    }

    /// Average out-degree = edges / vertices (Bisson's mode switch).
    pub fn avg_out_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            return 0.0;
        }
        self.num_edges as f64 / self.num_vertices as f64
    }

    /// Release the graph's device buffers. Freeing the same graph twice
    /// surfaces as [`SimError::Sanitizer`] (double-free).
    pub fn free(self, mem: &mut DeviceMem) -> Result<(), SimError> {
        mem.free(self.row_offsets)?;
        mem.free(self.col_indices)?;
        mem.free(self.edge_src)?;
        mem.free(self.edge_dst)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Device;
    use graph_data::{clean_edges, orient, EdgeList, Orientation};

    fn upload_triangle() -> (Device, DeviceMem, DeviceGraph) {
        let (g, _) = clean_edges(&EdgeList::new(vec![(0, 1), (1, 2), (0, 2)]));
        let dag = orient(&g, Orientation::ById);
        let dev = Device::v100();
        let mut mem = DeviceMem::new(&dev);
        let dg = DeviceGraph::upload(&dag, &mut mem).unwrap();
        (dev, mem, dg)
    }

    #[test]
    fn upload_mirrors_host_data() {
        let (_, mem, dg) = upload_triangle();
        assert_eq!(dg.num_vertices, 3);
        assert_eq!(dg.num_edges, 3);
        assert_eq!(mem.read_back(dg.row_offsets), dg.host_offsets);
        assert_eq!(mem.read_back(dg.edge_src), dg.host_src);
        assert_eq!(mem.read_back(dg.edge_dst), dg.host_dst);
        assert_eq!(dg.host_out_degree(0), 2);
        assert_eq!(dg.max_out_degree, 2);
        assert!((dg.avg_out_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn upload_defaults_to_full_work_range() {
        let (_, _, dg) = upload_triangle();
        assert_eq!((dg.edge_lo, dg.edge_hi), (0, dg.num_edges));
        assert_eq!((dg.pivot_lo, dg.pivot_hi), (0, dg.num_vertices));
        assert_eq!(dg.owned_edges(), dg.num_edges);
        assert_eq!(dg.owned_pivots(), dg.num_vertices);
    }

    #[test]
    fn restrict_narrows_work_ranges_only() {
        let (_, mem, mut dg) = upload_triangle();
        dg.restrict_to_pivots(1, 3);
        assert_eq!(dg.pivot_lo, 1);
        assert_eq!(dg.edge_lo, dg.host_offsets[1]);
        assert_eq!(dg.edge_hi, dg.host_offsets[3]);
        // The graph data itself stays whole.
        assert_eq!(mem.read_back(dg.row_offsets), dg.host_offsets);
        assert_eq!(mem.read_back(dg.edge_src), dg.host_src);
    }

    #[test]
    fn free_releases_capacity() {
        let (_, mut mem, dg) = upload_triangle();
        let before = mem.allocated_words();
        assert!(before > 0);
        dg.free(&mut mem).unwrap();
        assert_eq!(mem.allocated_words(), 0);
        assert!(mem.leak_check().is_ok());
    }

    #[test]
    fn upload_fails_on_tiny_device() {
        let (g, _) = clean_edges(&EdgeList::new(vec![(0, 1), (1, 2), (0, 2)]));
        let dag = orient(&g, Orientation::ById);
        let dev = Device::with_memory_words(4);
        let mut mem = DeviceMem::new(&dev);
        assert!(matches!(
            DeviceGraph::upload(&dag, &mut mem),
            Err(SimError::OutOfMemory { .. })
        ));
    }
}
