//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the tiny slice of the `rand` API it actually uses: a seedable
//! deterministic generator (`rngs::StdRng`), `Rng::{gen, gen_range,
//! gen_bool}` and `SeedableRng::{seed_from_u64, from_seed}`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but every use in this
//! workspace only relies on determinism-per-seed and uniformity, not on
//! reproducing upstream's exact byte stream.

pub mod rngs {
    /// Deterministic 64-bit PRNG (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }

        #[inline]
        pub(crate) fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeding interface (the subset of `rand::SeedableRng` in use).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        rngs::StdRng::from_state(s)
    }
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample(rng: &mut rngs::StdRng) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    #[inline]
    fn sample(rng: &mut rngs::StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    #[inline]
    fn sample(rng: &mut rngs::StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample(rng: &mut rngs::StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut rngs::StdRng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for the span sizes used here.
                let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + r as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + r as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

/// The subset of `rand::Rng` this workspace uses.
pub trait Rng {
    fn next_u64_raw(&mut self) -> u64;

    fn gen<T: Standard>(&mut self) -> T;

    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output;

    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for rngs::StdRng {
    #[inline]
    fn next_u64_raw(&mut self) -> u64 {
        self.next_u64()
    }

    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        <f64 as Standard>::sample(self) < p
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..3);
            assert!(y < 3);
        }
    }

    #[test]
    fn unit_floats_and_bools() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut trues = 0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            if rng.gen_bool(0.25) {
                trues += 1;
            }
        }
        assert!((1500..3500).contains(&trues), "p=0.25 gave {trues}/10000");
    }

    #[test]
    fn range_sampling_covers_domain() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
