//! SNAP text edge-list format: one `src dst` pair per line (whitespace or
//! tab separated), `#`-prefixed comment lines, as distributed at
//! <https://snap.stanford.edu/data/>.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

use crate::types::EdgeList;

/// Parse SNAP text. Malformed lines produce `InvalidData` errors with the
/// line number; blank lines and comments are skipped.
pub fn parse_snap_text<R: Read>(reader: R) -> io::Result<EdgeList> {
    let mut edges = Vec::new();
    let mut buf = String::new();
    let mut reader = BufReader::new(reader);
    let mut line_no = 0usize;
    loop {
        buf.clear();
        if reader.read_line(&mut buf)? == 0 {
            break;
        }
        line_no += 1;
        let line = buf.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> io::Result<u32> {
            tok.ok_or_else(|| malformed(line_no, line))?
                .parse::<u32>()
                .map_err(|_| malformed(line_no, line))
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        // Extra columns (weights, timestamps) are tolerated and ignored,
        // like the paper's transformation tools do for temporal graphs
        // such as sx-stackoverflow.
        edges.push((u, v));
    }
    Ok(EdgeList::new(edges))
}

fn malformed(line_no: usize, line: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("malformed SNAP line {line_no}: {line:?}"),
    )
}

/// Normalize raw pairs exactly the way [`crate::clean::clean_edges`]
/// does before it builds the graph: drop self-loops, flip each edge to
/// `(min, max)`, sort, dedupe. Running `clean_edges` on the result
/// removes nothing further, so counts are independent of which parse
/// path produced the list.
fn normalize_pairs(mut pairs: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    pairs.retain(|&(u, v)| u != v);
    for p in pairs.iter_mut() {
        *p = (p.0.min(p.1), p.0.max(p.1));
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Merge two normalized (sorted, deduped) runs into one.
fn merge_normalized(a: Vec<(u32, u32)>, b: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = if j >= b.len() || (i < a.len() && a[i] <= b[j]) {
            let x = a[i];
            i += 1;
            x
        } else {
            let x = b[j];
            j += 1;
            x
        };
        if out.last() != Some(&next) {
            out.push(next);
        }
    }
    out
}

/// Parse SNAP text and normalize at the parse boundary (self-loops
/// dropped, edges flipped to `(min, max)`, sorted, deduped) — the edge
/// set the cleaning pipeline assumes, produced identically whether the
/// input arrives in one buffer or is streamed in chunks.
pub fn parse_snap_text_normalized<R: Read>(reader: R) -> io::Result<EdgeList> {
    let raw = parse_snap_text(reader)?;
    Ok(EdgeList::new(normalize_pairs(raw.edges)))
}

/// The streamed twin of [`parse_snap_text_normalized`]: accumulates at
/// most `chunk_edges` raw edges before normalizing and merging them into
/// the running result, so peak memory tracks the *deduplicated* edge
/// count plus one bounded chunk — not the raw input size. The output is
/// identical to the in-memory path for every input and chunk size.
pub fn parse_snap_text_chunked<R: Read>(reader: R, chunk_edges: usize) -> io::Result<EdgeList> {
    let chunk_edges = chunk_edges.max(1);
    let mut merged: Vec<(u32, u32)> = Vec::new();
    let mut chunk: Vec<(u32, u32)> = Vec::with_capacity(chunk_edges);
    let mut buf = String::new();
    let mut reader = BufReader::new(reader);
    let mut line_no = 0usize;
    loop {
        buf.clear();
        let eof = reader.read_line(&mut buf)? == 0;
        if !eof {
            line_no += 1;
            let line = buf.trim();
            if !(line.is_empty() || line.starts_with('#')) {
                let mut it = line.split_whitespace();
                let parse = |tok: Option<&str>| -> io::Result<u32> {
                    tok.ok_or_else(|| malformed(line_no, line))?
                        .parse::<u32>()
                        .map_err(|_| malformed(line_no, line))
                };
                let u = parse(it.next())?;
                let v = parse(it.next())?;
                chunk.push((u, v));
            }
        }
        if chunk.len() >= chunk_edges || (eof && !chunk.is_empty()) {
            let normalized = normalize_pairs(std::mem::take(&mut chunk));
            merged = merge_normalized(merged, normalized);
            chunk = Vec::with_capacity(chunk_edges);
        }
        if eof {
            break;
        }
    }
    Ok(EdgeList::new(merged))
}

/// Write SNAP text with a provenance header.
pub fn write_snap_text<W: Write>(writer: W, edges: &EdgeList) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# Directed edge list written by tc-compare")?;
    writeln!(w, "# Edges: {}", edges.len())?;
    for &(u, v) in &edges.edges {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_blanks_and_tabs() {
        let text = "# FromNodeId\tToNodeId\n\n0\t1\n2 3\n  4   5  \n";
        let e = parse_snap_text(text.as_bytes()).unwrap();
        assert_eq!(e.edges, vec![(0, 1), (2, 3), (4, 5)]);
    }

    #[test]
    fn tolerates_extra_columns() {
        let text = "0 1 1350000000\n1 2 1360000000\n";
        let e = parse_snap_text(text.as_bytes()).unwrap();
        assert_eq!(e.edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_snap_text("0 x\n".as_bytes()).is_err());
        assert!(parse_snap_text("42\n".as_bytes()).is_err());
        assert!(parse_snap_text("-1 3\n".as_bytes()).is_err());
    }

    #[test]
    fn error_reports_line_number() {
        let err = parse_snap_text("0 1\nbad line\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn roundtrip() {
        let e = EdgeList::new(vec![(3, 1), (0, 0), (7, 9)]);
        let mut out = Vec::new();
        write_snap_text(&mut out, &e).unwrap();
        assert_eq!(parse_snap_text(&out[..]).unwrap(), e);
    }

    #[test]
    fn empty_input_is_empty_list() {
        assert!(parse_snap_text("".as_bytes()).unwrap().is_empty());
        assert!(parse_snap_text("# only comments\n".as_bytes())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn normalized_parse_drops_loops_and_duplicates() {
        // Duplicate, reverse-duplicate and self-loop edges collapse to
        // the normalized (min, max) set, sorted.
        let text = "2 1\n1 2\n3 3\n0 1\n1 0\n2 1\n";
        let e = parse_snap_text_normalized(text.as_bytes()).unwrap();
        assert_eq!(e.edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn normalized_output_is_a_cleaning_fixpoint() {
        // clean_edges must find nothing left to remove: same graph, zero
        // duplicate/self-loop removals.
        let text = "5 2\n2 5\n7 7\n0 3\n3 0\n5 2\n9 1\n";
        let raw = parse_snap_text(text.as_bytes()).unwrap();
        let norm = parse_snap_text_normalized(text.as_bytes()).unwrap();
        let (g_raw, _) = crate::clean::clean_edges(&raw);
        let (g_norm, report) = crate::clean::clean_edges(&norm);
        assert_eq!(g_raw, g_norm);
        assert_eq!(report.removed_self_loops, 0);
        assert_eq!(report.removed_duplicates, 0);
    }

    #[test]
    fn chunked_parse_is_identical_to_in_memory_for_every_chunk_size() {
        let text = "# header\n9 4\n4 9\n1 1\n0 2\n2 0\n8 3\n3 8\n8 3\n5 6\n";
        let whole = parse_snap_text_normalized(text.as_bytes()).unwrap();
        for chunk in [1, 2, 3, 7, 64] {
            let streamed = parse_snap_text_chunked(text.as_bytes(), chunk).unwrap();
            assert_eq!(streamed, whole, "chunk size {chunk}");
        }
    }

    #[test]
    fn chunked_parse_still_rejects_garbage_with_line_numbers() {
        let err = parse_snap_text_chunked("0 1\nbad line\n".as_bytes(), 1).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }
}
