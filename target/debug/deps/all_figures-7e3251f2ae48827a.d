/root/repo/target/debug/deps/all_figures-7e3251f2ae48827a.d: crates/tc-bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/all_figures-7e3251f2ae48827a: crates/tc-bench/src/bin/all_figures.rs

crates/tc-bench/src/bin/all_figures.rs:
