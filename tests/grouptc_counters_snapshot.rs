//! Golden snapshot of GroupTC's profiling counters on a fixed R-MAT
//! graph. The simulator is deterministic, so these values are exact: any
//! drift means a change to the modelled memory system, the replay rules,
//! or GroupTC's kernels — all of which silently re-scale every figure of
//! the reproduction and must be reviewed (and this snapshot re-pinned)
//! deliberately.
//!
//! The same snapshot is asserted twice: once on a plain benchmark device
//! and once with SimSan forced on, pinning the sanitizer's
//! zero-perturbation guarantee (identical counters and cycles, modulo
//! the `sanitizer_*` fields themselves).

use tc_compare::algos::{DeviceGraph, TcAlgorithm, TcOutput};
use tc_compare::core::GroupTc;
use tc_compare::graph::{clean_edges, gen, orient, Orientation};
use tc_compare::sim::{Device, DeviceMem, ProfileCounters};

fn run_grouptc(dev: &Device) -> TcOutput {
    // reproduce with: let edges = gen::rmat(10, 8000, 0.57, 0.19, 0.19, 0.05, 42);
    let edges = gen::rmat(10, 8000, 0.57, 0.19, 0.19, 0.05, 42);
    let (g, _) = clean_edges(&edges);
    let dag = orient(&g, Orientation::DegreeAsc);
    let mut mem = DeviceMem::new(dev);
    let dg = DeviceGraph::upload(&dag, &mut mem).expect("upload");
    GroupTc::default()
        .count(dev, &mut mem, &dg)
        .expect("GroupTC run")
}

/// The pinned counters of the plain (detector-off, sanitizer-off) run.
const GOLDEN: ProfileCounters = ProfileCounters {
    global_load_requests: 8_986,
    gld_transactions: 43_337,
    dram_load_sectors: 19_769,
    global_store_requests: 0,
    gst_transactions: 0,
    global_atomic_requests: 192,
    dram_atomic_sectors: 192,
    shared_load_requests: 20_208,
    shared_store_requests: 2_413,
    shared_atomic_requests: 0,
    compute_slots: 20_798,
    issued_slots: 52_597,
    active_thread_slots: 1_552_392,
    race_checks: 0,
    races_detected: 0,
    sanitizer_checks: 0,
    sanitizer_reports: 0,
    lint_checks: 0,
};

#[test]
fn grouptc_counters_on_fixed_rmat_are_pinned() {
    // A plain benchmark-configuration device: race detection and SimSan
    // off, so the snapshot also locks `race_checks == 0` and
    // `sanitizer_checks == 0` for production launches.
    let out = run_grouptc(&Device::v100());

    assert_eq!(out.triangles, 24_199);
    assert_eq!(out.stats.kernel_cycles, 19_262);
    assert_eq!(out.stats.counters, GOLDEN);

    // The paper's two headline metrics, derived from the fields above.
    let wee = out.stats.counters.warp_execution_efficiency();
    assert!(
        (wee - 0.922339).abs() < 1e-6,
        "warp_execution_efficiency drifted: {wee}"
    );
    let gld_tpr = out.stats.counters.gld_transactions_per_request();
    assert!(
        (gld_tpr - 4.822724).abs() < 1e-6,
        "gld_transactions_per_request drifted: {gld_tpr}"
    );
    assert_eq!(out.stats.counters.gst_transactions_per_request(), 0.0);
}

#[test]
fn grouptc_snapshot_is_unchanged_under_the_sanitizer() {
    let out = run_grouptc(&Device::v100().with_sanitizer());

    // SimSan actually ran, and found nothing.
    assert!(out.stats.counters.sanitizer_checks > 0);
    assert_eq!(out.stats.counters.sanitizer_reports, 0);

    // Zero perturbation: every modelled value matches the golden run
    // exactly once the sanitizer's own bookkeeping fields are masked.
    let masked = ProfileCounters {
        sanitizer_checks: 0,
        sanitizer_reports: 0,
        lint_checks: 0,
        ..out.stats.counters
    };
    assert_eq!(masked, GOLDEN);
    assert_eq!(out.triangles, 24_199);
    assert_eq!(out.stats.kernel_cycles, 19_262);
}
