/root/repo/target/debug/examples/format_convert-6a0bc594af2047e6.d: examples/format_convert.rs

/root/repo/target/debug/examples/format_convert-6a0bc594af2047e6: examples/format_convert.rs

examples/format_convert.rs:
