//! SimSan's and SimLint's zero-perturbation property, checked
//! statistically: for every registered algorithm on random graphs, a
//! sanitized (or linted) run must produce byte-identical results, cycles
//! and modelled counters to the plain run (modulo each analysis's own
//! bookkeeping fields and, for lints, the attached `LintReport`). The
//! checks observe — they never push trace ops, touch the L1 model, or
//! add cycles — and this test is what keeps that true as the
//! instrumentation evolves.

use proptest::prelude::*;

use tc_compare::algos::{DeviceGraph, TcAlgorithm, TcOutput};
use tc_compare::core::all_algorithms;
use tc_compare::graph::{clean_edges, orient, EdgeList};
use tc_compare::sim::{Device, DeviceMem, ProfileCounters};

/// Random raw edge list: up to 400 edges over up to 60 vertices, with
/// self-loops and duplicates allowed (cleaning must cope).
fn raw_edges() -> impl Strategy<Value = EdgeList> {
    prop::collection::vec((0u32..60, 0u32..60), 0..400).prop_map(EdgeList::new)
}

fn run(algo: &dyn TcAlgorithm, dev: &Device, raw: &EdgeList) -> TcOutput {
    let (g, _) = clean_edges(raw);
    let dag = orient(&g, algo.preferred_orientation());
    let mut mem = DeviceMem::new(dev);
    let dg = DeviceGraph::upload(&dag, &mut mem).expect("upload");
    let out = algo.count(dev, &mut mem, &dg).expect("count");
    dg.free(&mut mem).expect("free device graph");
    mem.leak_check().expect("leak");
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sanitized_runs_are_byte_identical_to_plain_runs(raw in raw_edges()) {
        for algo in all_algorithms() {
            let plain = run(algo.as_ref(), &Device::v100(), &raw);
            let san = run(algo.as_ref(), &Device::v100().with_sanitizer(), &raw);

            // A clean kernel must be entirely unperturbed...
            prop_assert_eq!(san.triangles, plain.triangles, "{}", algo.name());
            prop_assert_eq!(
                san.stats.kernel_cycles, plain.stats.kernel_cycles,
                "{}: cycles perturbed by SimSan", algo.name()
            );
            let masked = ProfileCounters {
                sanitizer_checks: 0,
                sanitizer_reports: 0,
                lint_checks: 0,
                ..san.stats.counters
            };
            prop_assert_eq!(
                masked, plain.stats.counters,
                "{}: counters perturbed by SimSan", algo.name()
            );

            // ...while the sanitizer actually inspected it and stayed
            // quiet. (On a degenerate graph a kernel may issue no memory
            // accesses at all — only require engagement when the plain
            // run shows the kernel touched memory.)
            let touched = plain.stats.counters.global_load_requests
                + plain.stats.counters.global_store_requests
                + plain.stats.counters.global_atomic_requests;
            prop_assert!(
                touched == 0 || san.stats.counters.sanitizer_checks > 0,
                "{}: SimSan never engaged", algo.name()
            );
            prop_assert_eq!(san.stats.counters.sanitizer_reports, 0u64);
            prop_assert_eq!(plain.stats.counters.sanitizer_checks, 0u64);
        }
    }

    #[test]
    fn linted_runs_are_byte_identical_to_plain_runs(raw in raw_edges()) {
        for algo in all_algorithms() {
            let plain = run(algo.as_ref(), &Device::v100(), &raw);
            let linted = run(algo.as_ref(), &Device::v100().with_lints(), &raw);

            // Zero perturbation: the cycle model and every modelled
            // counter are byte-identical with lints forced on; only the
            // lint's own bookkeeping field and the attached report may
            // differ.
            prop_assert_eq!(linted.triangles, plain.triangles, "{}", algo.name());
            prop_assert_eq!(
                linted.stats.kernel_cycles, plain.stats.kernel_cycles,
                "{}: cycles perturbed by SimLint", algo.name()
            );
            prop_assert_eq!(
                linted.stats.total_block_cycles, plain.stats.total_block_cycles,
                "{}: block cycles perturbed by SimLint", algo.name()
            );
            let masked = ProfileCounters {
                lint_checks: 0,
                ..linted.stats.counters
            };
            prop_assert_eq!(
                masked, plain.stats.counters,
                "{}: counters perturbed by SimLint", algo.name()
            );

            // Off by default: the plain run carries no lint state at
            // all. On: a report is attached (possibly clean) and the
            // engine demonstrably ran. (A degenerate graph may make an
            // algorithm launch nothing at all — only require engagement
            // when some block actually ran.)
            prop_assert!(plain.stats.lint.is_none(), "{}", algo.name());
            prop_assert_eq!(plain.stats.counters.lint_checks, 0u64);
            let launched = linted.stats.blocks > 0;
            prop_assert!(
                !launched || linted.stats.lint.is_some(),
                "{}: lints on but no report attached", algo.name()
            );
            prop_assert!(
                !launched || linted.stats.counters.lint_checks > 0,
                "{}: SimLint never engaged", algo.name()
            );
        }
    }
}
