/root/repo/target/debug/deps/tc_compare-141234855cd148c7.d: src/lib.rs

/root/repo/target/debug/deps/libtc_compare-141234855cd148c7.rmeta: src/lib.rs

src/lib.rs:
