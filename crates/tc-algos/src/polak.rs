//! Polak (2016) — "Counting triangles in large graphs on GPU".
//!
//! The GPU port of the CPU Forward algorithm (Section III-A / Figure 3):
//! **one thread per edge**, coarse-grained. The thread maps its id to an
//! edge (u, v), fetches both out-neighbour lists and merges them
//! sequentially with two pointers, bumping a local counter at every
//! match.
//!
//! Characteristics the evaluation reproduces: the least total work of the
//! corpus (a single linear merge per edge, each element loaded once) but
//! below-average warp execution efficiency (each lane's merge length is
//! `d(u) + d(v)`, so warp time is the slowest lane's) and poor coalescing
//! (each lane walks its *own* lists sequentially, so the 32 addresses a
//! warp issues per step are scattered).

use gpu_sim::{Device, DeviceMem, KernelConfig, SimError};

use crate::api::{AlgoMeta, Granularity, Intersection, IteratorKind, TcAlgorithm, TcOutput};
use crate::device_graph::DeviceGraph;
use crate::util::warp_reduce_add;

/// Default block size of the reference implementation.
const BLOCK_DIM: u32 = 256;

/// The Polak algorithm.
#[derive(Debug, Default, Clone, Copy)]
pub struct Polak;

impl TcAlgorithm for Polak {
    fn meta(&self) -> AlgoMeta {
        AlgoMeta {
            name: "Polak",
            reference: "Polak, IPDPSW 2016",
            year: 2016,
            iterator: IteratorKind::Edge,
            intersection: Intersection::Merge,
            granularity: Granularity::Coarse,
        }
    }

    fn count(
        &self,
        dev: &Device,
        mem: &mut DeviceMem,
        g: &DeviceGraph,
    ) -> Result<TcOutput, SimError> {
        let counter = mem.alloc_zeroed(1, "polak.counter")?;
        let grid = g.owned_edges().div_ceil(BLOCK_DIM).max(1);
        let cfg = KernelConfig::new(grid, BLOCK_DIM);

        let stats = dev.launch(mem, cfg, |blk| {
            blk.phase(|lane| {
                // u64: edge-per-thread grids on billion-edge graphs
                // overflow a u32 thread id. Threads cover this device's
                // edge range (the whole graph on a single device).
                let e = g.edge_lo as u64 + lane.global_tid();
                let mut local = 0u32;
                if e < g.edge_hi as u64 {
                    let e = e as usize;
                    // Map tid -> edge (u, v).
                    let u = lane.ld_global(g.edge_src, e);
                    let v = lane.ld_global(g.edge_dst, e);
                    // Fetch list bounds.
                    let mut i = lane.ld_global(g.row_offsets, u as usize);
                    let u_end = lane.ld_global(g.row_offsets, u as usize + 1);
                    let mut j = lane.ld_global(g.row_offsets, v as usize);
                    let v_end = lane.ld_global(g.row_offsets, v as usize + 1);
                    // Sequential two-pointer merge.
                    if i < u_end && j < v_end {
                        let mut a = lane.ld_global(g.col_indices, i as usize);
                        let mut b = lane.ld_global(g.col_indices, j as usize);
                        loop {
                            lane.compute(1);
                            match a.cmp(&b) {
                                std::cmp::Ordering::Equal => {
                                    local += 1;
                                    i += 1;
                                    j += 1;
                                    if i >= u_end || j >= v_end {
                                        break;
                                    }
                                    a = lane.ld_global(g.col_indices, i as usize);
                                    b = lane.ld_global(g.col_indices, j as usize);
                                }
                                std::cmp::Ordering::Less => {
                                    i += 1;
                                    if i >= u_end {
                                        break;
                                    }
                                    a = lane.ld_global(g.col_indices, i as usize);
                                }
                                std::cmp::Ordering::Greater => {
                                    j += 1;
                                    if j >= v_end {
                                        break;
                                    }
                                    b = lane.ld_global(g.col_indices, j as usize);
                                }
                            }
                        }
                    }
                }
                warp_reduce_add(lane, counter, 0, local);
            });
        })?;

        let triangles = mem.read_back(counter)[0] as u64;
        mem.free(counter)?;
        Ok(TcOutput { triangles, stats })
    }

    /// Host kernel: one rayon task per vertex, sequential two-pointer
    /// merge per out-edge — the CPU Forward algorithm Polak ports.
    fn count_cpu(&self, dag: &graph_data::DagGraph) -> u64 {
        crate::cpu::par_edge_merge(dag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device_graph::DeviceGraph;
    use graph_data::{clean_edges, cpu_ref, orient, EdgeList, Orientation};

    #[test]
    fn counts_figure1_graph() {
        let (g, _) = clean_edges(&EdgeList::new(vec![
            (0, 1),
            (0, 5),
            (1, 2),
            (1, 3),
            (1, 4),
            (2, 3),
            (2, 4),
            (2, 5),
            (3, 4),
            (4, 5),
        ]));
        let dag = orient(&g, Orientation::DegreeAsc);
        let dev = Device::v100();
        let mut mem = DeviceMem::new(&dev);
        let dg = DeviceGraph::upload(&dag, &mut mem).unwrap();
        let out = Polak.count(&dev, &mut mem, &dg).unwrap();
        assert_eq!(out.triangles, 5);
        assert_eq!(out.triangles, cpu_ref::forward_merge(&dag));
        assert!(out.stats.counters.global_load_requests > 0);
        assert!(out.stats.kernel_cycles > 0);
    }

    #[test]
    fn empty_graph_counts_zero() {
        let (g, _) = clean_edges(&EdgeList::new(vec![(0, 1)]));
        let dag = orient(&g, Orientation::ById);
        let dev = Device::v100();
        let mut mem = DeviceMem::new(&dev);
        let dg = DeviceGraph::upload(&dag, &mut mem).unwrap();
        assert_eq!(Polak.count(&dev, &mut mem, &dg).unwrap().triangles, 0);
    }

    #[test]
    fn exhaustive_small_graphs() {
        crate::testutil::exhaustive_small_graph_check(&Polak);
    }

    #[test]
    fn works_under_all_orientations() {
        for o in [
            Orientation::ById,
            Orientation::DegreeAsc,
            Orientation::DegreeDesc,
        ] {
            crate::testutil::assert_matches_reference(&Polak, &crate::testutil::figure1_edges(), o);
        }
    }

    #[test]
    fn metadata_matches_table1() {
        let m = Polak.meta();
        assert_eq!(m.year, 2016);
        assert_eq!(m.iterator, IteratorKind::Edge);
        assert_eq!(m.intersection, Intersection::Merge);
        assert_eq!(m.granularity, Granularity::Coarse);
    }
}
