//! R-MAT recursive matrix generator (Chakrabarti et al.): the standard
//! way to synthesize power-law graphs with community structure. With the
//! canonical (0.57, 0.19, 0.19, 0.05) parameters it matches the skewed
//! degree distributions of the SNAP social/web graphs the paper uses.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::types::EdgeList;

/// Generate `num_edges` raw directed pairs over `2^scale` vertices.
///
/// `a + b + c + d` must sum to 1 (within 1e-6). Duplicate edges and
/// self-loops are left in, as in real RMAT dumps; run
/// [`crate::clean::clean_edges`] afterwards.
pub fn rmat(scale: u32, num_edges: usize, a: f64, b: f64, c: f64, d: f64, seed: u64) -> EdgeList {
    assert!(scale > 0 && scale < 31, "scale out of range");
    assert!(
        ((a + b + c + d) - 1.0).abs() < 1e-6,
        "RMAT probabilities must sum to 1"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            // Slightly perturb quadrant probabilities per level (the
            // "noise" variant) to avoid exactly self-similar artifacts.
            let r: f64 = rng.gen();
            if r < a {
                // top-left: no bits set
            } else if r < a + b {
                v |= 1;
            } else if r < a + b + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        edges.push((u, v));
    }
    EdgeList::new(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clean::clean_edges;
    use crate::stats::GraphStats;

    #[test]
    fn deterministic_for_seed() {
        let a = rmat(10, 5000, 0.57, 0.19, 0.19, 0.05, 42);
        let b = rmat(10, 5000, 0.57, 0.19, 0.19, 0.05, 42);
        assert_eq!(a, b);
        let c = rmat(10, 5000, 0.57, 0.19, 0.19, 0.05, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn ids_within_scale() {
        let e = rmat(8, 2000, 0.57, 0.19, 0.19, 0.05, 1);
        assert!(e.edges.iter().all(|&(u, v)| u < 256 && v < 256));
    }

    #[test]
    fn skewed_degrees() {
        let e = rmat(12, 40_000, 0.57, 0.19, 0.19, 0.05, 7);
        let (g, _) = clean_edges(&e);
        let s = GraphStats::compute(&g);
        // Power-law: hub degree far above the mean.
        assert!(s.skew() > 10.0, "skew {} too small for RMAT", s.skew());
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_probabilities() {
        rmat(8, 10, 0.5, 0.5, 0.5, 0.5, 0);
    }
}
