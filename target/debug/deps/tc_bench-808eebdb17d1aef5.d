/root/repo/target/debug/deps/tc_bench-808eebdb17d1aef5.d: crates/tc-bench/src/lib.rs

/root/repo/target/debug/deps/tc_bench-808eebdb17d1aef5: crates/tc-bench/src/lib.rs

crates/tc-bench/src/lib.rs:
