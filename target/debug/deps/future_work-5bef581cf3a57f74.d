/root/repo/target/debug/deps/future_work-5bef581cf3a57f74.d: crates/tc-bench/src/bin/future_work.rs

/root/repo/target/debug/deps/future_work-5bef581cf3a57f74: crates/tc-bench/src/bin/future_work.rs

crates/tc-bench/src/bin/future_work.rs:
