//! Dataset statistics, used to emit Table II and the average-degree
//! series overlaid on Figure 11.

use crate::types::{CsrAccess, UndirGraph};

/// Summary statistics of a cleaned graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    pub vertices: u32,
    pub edges: u64,
    pub avg_degree: f64,
    pub max_degree: u32,
    pub degree_stddev: f64,
    /// Log2-binned degree histogram: `histogram[i]` = number of vertices
    /// with degree in `[2^i, 2^(i+1))`; `histogram[0]` covers degree 1.
    pub degree_histogram: Vec<u64>,
}

impl GraphStats {
    pub fn compute(g: &UndirGraph) -> Self {
        Self::compute_access(g.csr())
    }

    /// [`GraphStats::compute`] over any [`CsrAccess`] — symmetric CSR
    /// assumed (stored entries are counted as two per undirected edge),
    /// whether resident or streamed from a spill file.
    pub fn compute_access<A: CsrAccess + ?Sized>(g: &A) -> Self {
        let n = g.num_vertices();
        let mut max_degree = 0u32;
        let mut sum = 0f64;
        let mut sum_sq = 0f64;
        let mut histogram: Vec<u64> = Vec::new();
        for v in 0..n {
            let d = g.degree(v);
            max_degree = max_degree.max(d);
            sum += d as f64;
            sum_sq += (d as f64) * (d as f64);
            if d > 0 {
                let bin = 31 - d.leading_zeros();
                if histogram.len() <= bin as usize {
                    histogram.resize(bin as usize + 1, 0);
                }
                histogram[bin as usize] += 1;
            }
        }
        let avg = if n == 0 { 0.0 } else { sum / n as f64 };
        let var = if n == 0 {
            0.0
        } else {
            (sum_sq / n as f64 - avg * avg).max(0.0)
        };
        GraphStats {
            vertices: n,
            edges: g.num_entries() / 2,
            avg_degree: avg,
            max_degree,
            degree_stddev: var.sqrt(),
            degree_histogram: histogram,
        }
    }

    /// Heavy-tail indicator: ratio of max degree to average degree. Real
    /// power-law graphs have values in the hundreds; road networks near 2.
    pub fn skew(&self) -> f64 {
        if self.avg_degree == 0.0 {
            0.0
        } else {
            self.max_degree as f64 / self.avg_degree
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clean::clean_edges;
    use crate::types::EdgeList;

    #[test]
    fn stats_of_star() {
        // Star with hub degree 4.
        let (g, _) = clean_edges(&EdgeList::new(vec![(0, 1), (0, 2), (0, 3), (0, 4)]));
        let s = GraphStats::compute(&g);
        assert_eq!(s.vertices, 5);
        assert_eq!(s.edges, 4);
        assert_eq!(s.max_degree, 4);
        assert!((s.avg_degree - 8.0 / 5.0).abs() < 1e-12);
        // Degrees: 4 (bin 2), 1,1,1,1 (bin 0).
        assert_eq!(s.degree_histogram, vec![4, 0, 1]);
        assert!(s.skew() > 2.0);
    }

    #[test]
    fn stats_of_empty_graph() {
        let (g, _) = clean_edges(&EdgeList::default());
        let s = GraphStats::compute(&g);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.skew(), 0.0);
        assert!(s.degree_histogram.is_empty());
    }

    #[test]
    fn regular_graph_has_zero_stddev() {
        // 4-cycle: all degrees 2.
        let (g, _) = clean_edges(&EdgeList::new(vec![(0, 1), (1, 2), (2, 3), (3, 0)]));
        let s = GraphStats::compute(&g);
        assert!(s.degree_stddev.abs() < 1e-9);
        assert_eq!(s.max_degree, 2);
    }
}
