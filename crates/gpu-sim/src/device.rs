use crate::counters::{LaunchStats, ProfileCounters};
use crate::exec::{run_block, BlockCtx, BlockScratch, KernelConfig};
use crate::lint::{build_report, LintConfig, LintObserver};
use crate::mem::DeviceMem;
use crate::schedule::schedule_blocks;
use crate::{CostModel, SimError};

use rayon::prelude::*;

/// Static configuration of the simulated GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Maximum resident threads per SM (occupancy limit).
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Shared memory per block, in 4-byte words.
    pub shared_mem_words: u32,
    /// L1 data cache per SM, in 32-byte sectors (V100: 128 KB).
    pub l1_sectors_per_sm: u32,
    /// Global memory capacity, in 4-byte words.
    pub global_mem_words: u64,
    /// Force the data-race detector on for *every* launch on this device,
    /// regardless of each launch's [`KernelConfig::race_detect`] flag.
    /// Test harnesses use this to run algorithms that build their own
    /// launch configurations internally under the detector.
    pub force_race_detection: bool,
    /// Force SimSan (see `gpu_sim::sanitize`) on for every launch on
    /// this device, regardless of each launch's
    /// [`KernelConfig::sanitize`] flag — the sanitizer counterpart of
    /// `force_race_detection`.
    pub force_sanitizer: bool,
    /// Force the retained two-pass trace engine (see
    /// [`KernelConfig::retained_trace`]) for every launch on this
    /// device. Differential harnesses use this to run algorithms that
    /// build their own launch configurations internally under the
    /// reference engine and compare against the default fused one.
    pub force_retained_trace: bool,
    /// Force SimLint (see `gpu_sim::lint`) on for every launch on this
    /// device, regardless of each launch's [`KernelConfig::lint`] flag —
    /// the lint counterpart of `force_race_detection`. Conformance
    /// harnesses use this to run algorithms that build their own launch
    /// configurations internally under the diagnostics engine.
    pub force_lints: bool,
    pub cost: CostModel,
}

impl DeviceConfig {
    /// A Tesla V100 scaled for simulation: the paper's card has 80 SMs,
    /// 48 KB shared memory per block and 16 GB of HBM2. We keep the SM
    /// and shared-memory geometry exact and scale global memory down by
    /// the same ~256x factor as the datasets (Table II stand-ins), so the
    /// algorithms that exhaust a real V100 on the largest graphs exhaust
    /// the simulated one on the largest stand-ins.
    pub fn v100() -> Self {
        DeviceConfig {
            num_sms: 80,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            shared_mem_words: 48 * 1024 / 4,
            l1_sectors_per_sm: 128 * 1024 / 32,
            global_mem_words: 16 * 1024 * 1024, // 64 MiB => 16 GB / 256
            force_race_detection: false,
            force_sanitizer: false,
            force_retained_trace: false,
            force_lints: false,
            cost: CostModel::v100(),
        }
    }

    /// An RTX 4090 stand-in (144 SMs, 128 KB shared, 24 GB scaled), with
    /// the Ada-flavoured [`CostModel::rtx4090`] — see that constructor
    /// for the calibration rationale.
    pub fn rtx4090() -> Self {
        DeviceConfig {
            num_sms: 144,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 24,
            shared_mem_words: 128 * 1024 / 4,
            l1_sectors_per_sm: 128 * 1024 / 32,
            global_mem_words: 24 * 1024 * 1024,
            force_race_detection: false,
            force_sanitizer: false,
            force_retained_trace: false,
            force_lints: false,
            cost: CostModel::rtx4090(),
        }
    }
}

/// The simulated GPU. Cheap to construct; owns no memory (see
/// [`DeviceMem`]).
#[derive(Debug, Clone)]
pub struct Device {
    config: DeviceConfig,
}

impl Device {
    pub fn new(config: DeviceConfig) -> Self {
        Device { config }
    }

    /// Simulated Tesla V100 (the paper's primary platform).
    pub fn v100() -> Self {
        Device::new(DeviceConfig::v100())
    }

    /// Simulated RTX 4090.
    pub fn rtx4090() -> Self {
        Device::new(DeviceConfig::rtx4090())
    }

    /// A device with custom global-memory capacity (for tests).
    pub fn with_memory_words(words: u64) -> Self {
        let mut cfg = DeviceConfig::v100();
        cfg.global_mem_words = words;
        Device::new(cfg)
    }

    /// Force the data-race detector on for every launch on this device
    /// (see [`DeviceConfig::force_race_detection`]).
    pub fn with_race_detection(mut self) -> Self {
        self.config.force_race_detection = true;
        self
    }

    /// Force SimSan on for every launch on this device (see
    /// [`DeviceConfig::force_sanitizer`]).
    pub fn with_sanitizer(mut self) -> Self {
        self.config.force_sanitizer = true;
        self
    }

    /// Force the retained two-pass trace engine on for every launch on
    /// this device (see [`DeviceConfig::force_retained_trace`]).
    pub fn with_retained_trace(mut self) -> Self {
        self.config.force_retained_trace = true;
        self
    }

    /// Force SimLint on for every launch on this device (see
    /// [`DeviceConfig::force_lints`]).
    pub fn with_lints(mut self) -> Self {
        self.config.force_lints = true;
        self
    }

    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// How many blocks of the given configuration can be resident on one
    /// SM at a time (the CUDA occupancy calculation, simplified to the
    /// thread, block and shared-memory limits).
    pub fn resident_blocks_per_sm(&self, cfg: &KernelConfig) -> u32 {
        let by_threads = self.config.max_threads_per_sm / cfg.block_dim.max(1);
        let by_shared = self
            .config
            .shared_mem_words
            .checked_div(cfg.shared_words)
            .unwrap_or(self.config.max_blocks_per_sm);
        by_threads
            .min(by_shared)
            .min(self.config.max_blocks_per_sm)
            .max(1)
    }

    /// Launch a kernel: run `cfg.grid_dim` independent blocks (in parallel
    /// on the host), then wave-schedule their cycle counts across the SMs
    /// to produce the modelled kernel time.
    ///
    /// The kernel closure is invoked once per block with a fresh
    /// [`BlockCtx`]; it structures the block's work into barrier-separated
    /// phases via [`BlockCtx::phase`].
    pub fn launch<F>(
        &self,
        mem: &DeviceMem,
        cfg: KernelConfig,
        kernel: F,
    ) -> Result<LaunchStats, SimError>
    where
        F: Fn(&mut BlockCtx<'_>) + Sync,
    {
        if cfg.block_dim == 0 || cfg.grid_dim == 0 {
            return Err(SimError::InvalidLaunch(format!(
                "grid {} x block {} must be non-zero",
                cfg.grid_dim, cfg.block_dim
            )));
        }
        if cfg.block_dim > 1024 {
            return Err(SimError::InvalidLaunch(format!(
                "block dim {} exceeds the 1024-thread limit",
                cfg.block_dim
            )));
        }
        if cfg.shared_words > self.config.shared_mem_words {
            return Err(SimError::SharedMemoryExceeded {
                requested_words: cfg.shared_words,
                available_words: self.config.shared_mem_words,
            });
        }

        // Each block runs independently; each rayon worker carries one
        // BlockScratch arena across every block it simulates, so the
        // steady-state replay loop allocates nothing.
        let results: Result<Vec<(u64, ProfileCounters, Option<LintObserver>)>, SimError> = (0..cfg
            .grid_dim)
            .into_par_iter()
            .map_init(BlockScratch::default, |scratch, block_idx| {
                run_block(self, mem, &cfg, block_idx, &kernel, scratch)
            })
            .collect();
        let per_block = results?;

        let mut counters = ProfileCounters::default();
        let mut cycles = Vec::with_capacity(per_block.len());
        // Lint observers fold in block order (the collect above preserves
        // it), so the merged per-phase aggregates — and the report built
        // from them — are deterministic regardless of rayon scheduling.
        let mut merged_lint: Option<LintObserver> = None;
        for (c, pc, obs) in per_block {
            cycles.push(c);
            counters += pc;
            match (&mut merged_lint, obs) {
                (Some(acc), Some(o)) => acc.fold(&o),
                (acc @ None, Some(o)) => *acc = Some(o),
                (_, None) => {}
            }
        }
        let lint = merged_lint.map(|obs| build_report(&obs, mem, &LintConfig::default()));

        let parallel_slots = (self.config.num_sms * self.resident_blocks_per_sm(&cfg)) as usize;
        let compute_cycles = schedule_blocks(&cycles, parallel_slots);
        // Triangle counting is memory-bound: the kernel can never finish
        // faster than DRAM can deliver its sector traffic, however much
        // SM-level parallelism hides latency. Atomic traffic enters as
        // *sectors* (scattered atomics move a sector per lane), and a
        // partial trailing sector still occupies a full delivery cycle.
        let total_sectors =
            counters.dram_load_sectors + counters.gst_transactions + counters.dram_atomic_sectors;
        let bandwidth_cycles =
            total_sectors.div_ceil(self.config.cost.dram_sectors_per_cycle.max(1));
        let kernel_cycles = compute_cycles.max(bandwidth_cycles);
        Ok(LaunchStats {
            kernel_cycles,
            total_block_cycles: cycles.iter().sum(),
            blocks: cfg.grid_dim as u64,
            counters,
            lint,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_limited_by_threads() {
        let dev = Device::v100();
        let cfg = KernelConfig::new(1, 1024);
        assert_eq!(dev.resident_blocks_per_sm(&cfg), 2);
    }

    #[test]
    fn occupancy_limited_by_block_cap() {
        let dev = Device::v100();
        let cfg = KernelConfig::new(1, 32);
        assert_eq!(dev.resident_blocks_per_sm(&cfg), 32);
    }

    #[test]
    fn occupancy_limited_by_shared_memory() {
        let dev = Device::v100();
        // Whole 48 KB per block => 1 resident block.
        let cfg = KernelConfig::new(1, 64).with_shared_words(48 * 1024 / 4);
        assert_eq!(dev.resident_blocks_per_sm(&cfg), 1);
    }

    #[test]
    fn lane_oob_access_fails_launch_without_panicking() {
        let dev = Device::v100();
        let mut mem = DeviceMem::new(&dev);
        let buf = mem.alloc_zeroed(8, "small").unwrap();
        // Every lane reads past the end: the launch must return a
        // structured MemoryFault naming the buffer, not abort.
        let err = dev
            .launch(&mem, KernelConfig::new(2, 32), |blk| {
                blk.phase(|lane| {
                    lane.ld_global(buf, 8 + lane.tid() as usize);
                });
            })
            .unwrap_err();
        match err {
            SimError::MemoryFault { buffer, index, len } => {
                assert_eq!(buffer, "small");
                assert_eq!(len, 8);
                assert!(index >= 8);
            }
            other => panic!("expected MemoryFault, got {other:?}"),
        }
    }

    #[test]
    fn faulted_block_poisons_only_itself() {
        let dev = Device::v100();
        let mut mem = DeviceMem::new(&dev);
        let buf = mem.alloc_zeroed(4, "counts").unwrap();
        // Block 3 faults; the others each add 1 to their own counter
        // before the launch reports the fault. The healthy blocks' work
        // must still have landed (blocks are independent, like CUDA).
        let err = dev
            .launch(&mem, KernelConfig::new(4, 32), |blk| {
                let b = blk.block_idx() as usize;
                blk.phase(move |lane| {
                    if lane.tid() == 0 {
                        if lane.block_idx() == 3 {
                            lane.ld_global(buf, 999);
                            // Poisoned: these must all be dropped.
                            lane.st_global(buf, 0, 77);
                            lane.atomic_add_global(buf, 1, 77);
                        } else {
                            lane.atomic_add_global(buf, b, 1);
                        }
                    }
                });
            })
            .unwrap_err();
        assert!(matches!(err, SimError::MemoryFault { .. }));
        assert_eq!(mem.read_back(buf), vec![1, 1, 1, 0]);
    }

    #[test]
    fn scattered_atomics_hit_the_bandwidth_floor_by_sectors() {
        // 2048 blocks fit in one V100 wave (80 SMs x 32 resident), so
        // compute_cycles is one block's worth while atomic DRAM traffic
        // scales with the grid — the bandwidth floor binds.
        let dev = Device::v100();
        let mut mem = DeviceMem::new(&dev);
        let grid = 2048u32;
        let buf = mem.alloc_zeroed(grid as usize * 32 * 8, "targets").unwrap();
        // Scattered: every lane atomics its own 32-byte sector.
        let scattered = dev
            .launch(&mem, KernelConfig::new(grid, 32), |blk| {
                blk.phase(|lane| {
                    let idx = lane.global_tid() as usize * 8;
                    lane.atomic_add_global(buf, idx, 1);
                });
            })
            .unwrap();
        // Same-sector: all 32 lanes of a block hammer one word.
        let same = dev
            .launch(&mem, KernelConfig::new(grid, 32), |blk| {
                blk.phase(|lane| {
                    let idx = lane.block_idx() as usize * 8;
                    lane.atomic_add_global(buf, idx, 1);
                });
            })
            .unwrap();
        // One warp-slot each way, but 32x the DRAM sector traffic when
        // scattered. Counting *requests* in the floor (the old bug) saw
        // both launches as identical traffic.
        assert_eq!(scattered.counters.global_atomic_requests, grid as u64);
        assert_eq!(same.counters.global_atomic_requests, grid as u64);
        assert_eq!(scattered.counters.dram_atomic_sectors, grid as u64 * 32);
        assert_eq!(same.counters.dram_atomic_sectors, grid as u64);
        // Scattered is floor-bound at exactly ceil(sectors / 20): 65536
        // sectors -> 3277 cycles (truncation would say 3276).
        let d = dev.config().cost.dram_sectors_per_cycle;
        assert_eq!(
            scattered.kernel_cycles,
            (grid as u64 * 32).div_ceil(d),
            "bandwidth floor must bind for scattered atomics"
        );
        // Same-sector is compute-bound on its 32-deep collisions.
        assert!(same.kernel_cycles > same.counters.dram_atomic_sectors.div_ceil(d));
    }

    #[test]
    fn bandwidth_cycles_round_up_partial_sectors() {
        // Zero out every latency cost so the bandwidth floor is the only
        // term left; a 4-sector load then takes ceil(4/20) = 1 cycle.
        // The old truncating division modelled a free kernel.
        let mut cfg = DeviceConfig::v100();
        cfg.cost = CostModel {
            compute: 0,
            global_hit: 0,
            l1_wavefront: 0,
            global_issue: 0,
            global_sector: 0,
            shared_access: 0,
            shared_conflict: 0,
            global_atomic: 0,
            global_atomic_conflict: 0,
            shared_atomic: 0,
            shared_atomic_conflict: 0,
            dram_sectors_per_cycle: 20,
            link_bytes_per_cycle: 18,
            link_latency: 0,
        };
        let dev = Device::new(cfg);
        let mut mem = DeviceMem::new(&dev);
        let buf = mem.alloc_zeroed(32, "v").unwrap();
        let stats = dev
            .launch(&mem, KernelConfig::new(1, 32), |blk| {
                blk.phase(|lane| {
                    lane.ld_global(buf, lane.tid() as usize);
                });
            })
            .unwrap();
        assert_eq!(stats.counters.dram_load_sectors, 4);
        assert_eq!(stats.kernel_cycles, 1);
    }

    #[test]
    fn rtx4090_uses_its_own_cost_model() {
        let dev = Device::rtx4090();
        assert_eq!(dev.config().cost, CostModel::rtx4090());
        assert_ne!(dev.config().cost, CostModel::v100());
    }

    #[test]
    fn invalid_launches_rejected() {
        let dev = Device::v100();
        let mem = DeviceMem::new(&dev);
        assert!(matches!(
            dev.launch(&mem, KernelConfig::new(0, 32), |_| {}),
            Err(SimError::InvalidLaunch(_))
        ));
        assert!(matches!(
            dev.launch(&mem, KernelConfig::new(1, 2048), |_| {}),
            Err(SimError::InvalidLaunch(_))
        ));
        let huge_shared = KernelConfig::new(1, 32).with_shared_words(1 << 20);
        assert!(matches!(
            dev.launch(&mem, huge_shared, |_| {}),
            Err(SimError::SharedMemoryExceeded { .. })
        ));
    }
}
