//! End-to-end framework tests: dataset pipeline -> runner -> report /
//! CSV / claims, exercised over a small real sweep.

use tc_compare::core::framework::claims::{check_claims, render_claims};
use tc_compare::core::framework::csv::{write_records, CSV_HEADER};
use tc_compare::core::framework::registry::{algorithm_by_name, all_algorithms};
use tc_compare::core::framework::report::{extract, MatrixView};
use tc_compare::core::{run_matrix, PreparedDataset};
use tc_compare::graph::datasets::GenSpec;
use tc_compare::graph::{DatasetSpec, SizeClass};
use tc_compare::sim::Device;

fn specs() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "pipe-small",
            paper_vertices: 0,
            paper_edges: 0,
            paper_avg_degree: 0.0,
            size_class: SizeClass::Small,
            gen: GenSpec::Rmat {
                scale: 11,
                raw_edges: 12_000,
            },
            seed: 41,
        },
        DatasetSpec {
            name: "pipe-grid",
            paper_vertices: 0,
            paper_edges: 0,
            paper_avg_degree: 0.0,
            size_class: SizeClass::Small,
            gen: GenSpec::Grid {
                rows: 40,
                cols: 40,
                keep: 0.8,
                diag: 0.1,
            },
            seed: 42,
        },
    ]
}

#[test]
fn sweep_report_csv_and_claims_end_to_end() {
    let dev = Device::v100();
    let algos = all_algorithms();
    let specs = specs();
    let records = run_matrix(&dev, &algos, &specs);
    assert_eq!(records.len(), algos.len() * specs.len());
    assert!(records.iter().all(|r| r.is_verified()), "all cells verify");

    // Figure rendering includes every algorithm and dataset.
    let view = MatrixView::new(&records);
    let fig = view.render_figure("t", extract::time_ms);
    for a in &algos {
        assert!(fig.contains(a.name()), "{} missing from figure", a.name());
    }
    for s in &specs {
        assert!(fig.contains(s.name));
    }

    // Every extractor yields sane values for every cell.
    for a in &view.algorithms {
        for d in &view.datasets {
            let t = view.value(a, d, extract::time_ms).unwrap();
            assert!(t > 0.0);
            let eff = view.value(a, d, extract::warp_efficiency).unwrap();
            assert!(eff > 0.0 && eff <= 100.0);
            assert!(view.value(a, d, extract::load_requests).unwrap() > 0.0);
            assert!(view.value(a, d, extract::tpr).unwrap() >= 0.0);
        }
    }

    // CSV: header + one line per cell, parseable shape.
    let mut csv = Vec::new();
    write_records(&mut csv, &records).unwrap();
    let text = String::from_utf8(csv).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1 + records.len());
    let cols = CSV_HEADER.split(',').count();
    for l in &lines[1..] {
        assert_eq!(l.split(',').count(), cols, "bad row: {l}");
    }

    // Claims evaluate without panicking and produce one verdict each.
    let claims = check_claims(&view, &specs);
    assert!(claims.len() >= 5);
    let rendered = render_claims(&claims);
    assert!(rendered.contains("PAPER-CLAIM"));
}

#[test]
fn registry_lookup_is_total_over_figure_names() {
    for name in [
        "Green", "Polak", "Bisson", "TriCore", "Fox", "Hu", "H-INDEX", "TRUST", "GroupTC",
    ] {
        assert!(algorithm_by_name(name).is_some(), "{name} missing");
    }
}

#[test]
fn prepared_dataset_reuses_orientations_across_algorithms() {
    let dev = Device::v100();
    let spec = specs().remove(0);
    let data = PreparedDataset::prepare(&spec);
    let t0 = data.ground_truth;
    // Running twice must not change ground truth or graph.
    for algo in all_algorithms() {
        let _ = tc_compare::core::run_on_dataset(&dev, algo.as_ref(), &data);
    }
    assert_eq!(data.ground_truth, t0);
}
