/root/repo/target/debug/deps/integration_correctness-d29e1edc4d5bb88f.d: tests/integration_correctness.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_correctness-d29e1edc4d5bb88f.rmeta: tests/integration_correctness.rs Cargo.toml

tests/integration_correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
