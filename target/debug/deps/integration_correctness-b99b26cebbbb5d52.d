/root/repo/target/debug/deps/integration_correctness-b99b26cebbbb5d52.d: tests/integration_correctness.rs

/root/repo/target/debug/deps/integration_correctness-b99b26cebbbb5d52: tests/integration_correctness.rs

tests/integration_correctness.rs:
