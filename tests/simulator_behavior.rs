//! Integration tests of the simulator's modelled hardware effects as
//! observed *through* the public API — the behaviours the paper's
//! profiling analysis depends on.

use tc_compare::sim::{Device, DeviceMem, KernelConfig};

#[test]
fn coalesced_loads_beat_scattered_loads() {
    let dev = Device::v100();
    let mut mem = DeviceMem::new(&dev);
    let data = mem.alloc_zeroed(32 * 1024, "data").unwrap();

    // Coalesced: lane i reads word i.
    let coalesced = dev
        .launch(&mem, KernelConfig::new(1, 32), |blk| {
            blk.phase(|lane| {
                let i = lane.tid() as usize;
                lane.ld_global(data, i);
            });
        })
        .unwrap();
    // Scattered: lane i reads word i * 1024.
    let scattered = dev
        .launch(&mem, KernelConfig::new(1, 32), |blk| {
            blk.phase(|lane| {
                let i = lane.tid() as usize;
                lane.ld_global(data, i * 1024);
            });
        })
        .unwrap();

    assert_eq!(coalesced.counters.global_load_requests, 1);
    assert_eq!(scattered.counters.global_load_requests, 1);
    assert!(
        scattered.counters.gld_transactions > 4 * coalesced.counters.gld_transactions,
        "scattered {} vs coalesced {}",
        scattered.counters.gld_transactions,
        coalesced.counters.gld_transactions
    );
    assert!(scattered.total_block_cycles > coalesced.total_block_cycles);
}

#[test]
fn imbalanced_lanes_depress_warp_efficiency() {
    let dev = Device::v100();
    let mem = DeviceMem::new(&dev);

    let balanced = dev
        .launch(&mem, KernelConfig::new(1, 32), |blk| {
            blk.phase(|lane| lane.compute(100));
        })
        .unwrap();
    let imbalanced = dev
        .launch(&mem, KernelConfig::new(1, 32), |blk| {
            blk.phase(|lane| {
                // Lane i does i*8 work: classic power-law style skew.
                let n = lane.tid() * 8;
                lane.compute(n.max(1));
            });
        })
        .unwrap();

    assert!(balanced.counters.warp_execution_efficiency() > 0.99);
    let eff = imbalanced.counters.warp_execution_efficiency();
    assert!(eff < 0.7, "skewed lanes should stall the warp (eff {eff})");
}

#[test]
fn sequential_scan_hits_the_l1_model() {
    let dev = Device::v100();
    let mut mem = DeviceMem::new(&dev);
    let data = mem.alloc_zeroed(4096, "data").unwrap();

    // One lane scanning 1024 consecutive words: 128 sectors of DRAM
    // traffic (and 128 wavefronts), not 1024.
    let scan = dev
        .launch(&mem, KernelConfig::new(1, 1), |blk| {
            blk.phase(|lane| {
                for i in 0..1024 {
                    lane.ld_global(data, i);
                }
            });
        })
        .unwrap();
    assert_eq!(scan.counters.global_load_requests, 1024);
    assert_eq!(
        scan.counters.gld_transactions, 1024,
        "one wavefront per request"
    );
    assert_eq!(
        scan.counters.dram_load_sectors, 128,
        "7 of 8 words hit the L1 model"
    );
}

#[test]
fn bandwidth_floor_binds_massively_parallel_traffic() {
    let dev = Device::v100();
    let mut mem = DeviceMem::new(&dev);
    let data = mem.alloc_zeroed(1 << 20, "data").unwrap();

    // 4096 blocks x 256 lanes, each loading one scattered word: traffic
    // = ~1M sectors; compute makespan is tiny but DRAM can only deliver
    // ~20 sectors/cycle.
    let stats = dev
        .launch(&mem, KernelConfig::new(4096, 256), |blk| {
            let b = blk.block_idx();
            blk.phase(|lane| {
                let idx = ((lane.global_tid() * 2654435761 + b as u64) % (1 << 20)) as usize;
                lane.ld_global(data, idx);
            });
        })
        .unwrap();
    let sectors = stats.counters.gld_transactions;
    assert!(
        stats.kernel_cycles >= sectors / 20,
        "kernel {} cycles cannot beat the {}-sector DRAM floor",
        stats.kernel_cycles,
        sectors
    );
}

#[test]
fn atomics_serialize_on_hot_addresses() {
    let dev = Device::v100();
    let mut mem = DeviceMem::new(&dev);
    let hot = mem.alloc_zeroed(32, "hot").unwrap();

    let contended = dev
        .launch(&mem, KernelConfig::new(1, 32), |blk| {
            blk.phase(|lane| {
                lane.atomic_add_global(hot, 0, 1);
            });
        })
        .unwrap();
    let spread = dev
        .launch(&mem, KernelConfig::new(1, 32), |blk| {
            blk.phase(|lane| {
                lane.atomic_add_global(hot, lane.tid() as usize, 1);
            });
        })
        .unwrap();
    assert_eq!(mem.read_back(hot)[0], 32 + 1);
    assert!(contended.total_block_cycles > spread.total_block_cycles);
}

#[test]
fn shared_memory_values_cross_phases() {
    let dev = Device::v100();
    let mut mem = DeviceMem::new(&dev);
    let out = mem.alloc_zeroed(64, "out").unwrap();
    let cfg = KernelConfig::new(1, 64).with_shared_words(64);
    dev.launch(&mem, cfg, |blk| {
        blk.phase(|lane| {
            let t = lane.tid();
            lane.st_shared(t as usize, t * t);
        });
        blk.phase(|lane| {
            // Read a *different* lane's value: only legal across the
            // barrier.
            let t = lane.tid() as usize;
            let peer = (t + 13) % 64;
            let v = lane.ld_shared(peer);
            lane.st_global(out, t, v);
        });
    })
    .unwrap();
    let vals = mem.read_back(out);
    for (t, v) in vals.iter().enumerate().take(64) {
        let peer = ((t + 13) % 64) as u32;
        assert_eq!(*v, peer * peer);
    }
}

#[test]
fn occupancy_affects_kernel_time() {
    let dev = Device::v100();
    let mem = DeviceMem::new(&dev);
    // Same per-block work; the 48 KB-shared variant fits 1 block/SM
    // instead of many, so 800 blocks take more waves.
    let work = |blk: &mut tc_compare::sim::BlockCtx| {
        blk.phase(|lane| lane.compute(1000));
    };
    let dense = dev.launch(&mem, KernelConfig::new(800, 64), work).unwrap();
    let starved = dev
        .launch(
            &mem,
            KernelConfig::new(800, 64).with_shared_words(48 * 1024 / 4),
            work,
        )
        .unwrap();
    assert!(starved.kernel_cycles > 2 * dense.kernel_cycles);
}
