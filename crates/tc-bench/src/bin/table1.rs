//! Regenerates Table I: the taxonomy of major ITC algorithms on GPUs
//! (reference, year, iterator, intersection method, granularity), plus
//! the GroupTC row.

use tc_algos::api::{Granularity, Intersection, IteratorKind};
use tc_core::framework::registry::all_algorithms;
use tc_core::framework::report::Table;

fn main() {
    let mut t = Table::new(&[
        "Name",
        "Year",
        "Iterator",
        "Intersection",
        "Granularity",
        "Reference",
    ]);
    for algo in all_algorithms() {
        let m = algo.meta();
        t.row(vec![
            m.name.to_string(),
            m.year.to_string(),
            match m.iterator {
                IteratorKind::Vertex => "vertex",
                IteratorKind::Edge => "edge",
            }
            .to_string(),
            match m.intersection {
                Intersection::Merge => "Merge",
                Intersection::BinSearch => "Bin-Search",
                Intersection::Hash => "Hash",
                Intersection::BitMap => "BitMap",
                Intersection::MergeOrBinSearch => "Merge/Bin-Search",
            }
            .to_string(),
            match m.granularity {
                Granularity::Coarse => "coarse",
                Granularity::Fine => "fine",
            }
            .to_string(),
            m.reference.to_string(),
        ]);
    }
    println!("TABLE I: MAJOR ITC ALGORITHMS ON GPUS (+ GroupTC)");
    println!("{}", t.render());
}
