/root/repo/target/release/deps/fig15-df7ce6aae6fce951.d: crates/tc-bench/src/bin/fig15.rs

/root/repo/target/release/deps/fig15-df7ce6aae6fce951: crates/tc-bench/src/bin/fig15.rs

crates/tc-bench/src/bin/fig15.rs:
