/// One recorded lane operation (the *logical* view).
///
/// Lanes append one op per simulated instruction — except arithmetic,
/// which is *run-length encoded*: `Compute(n)` stands for `n` consecutive
/// arithmetic instructions. The warp replayer aligns the traces of the 32
/// lanes of a warp step-by-step and charges each step according to the
/// [`crate::CostModel`]; compute runs are consumed in `min`-run batches
/// that are bit-identical to stepping one instruction at a time (see
/// `replay_warp`). Addresses are byte addresses in the flat device
/// address space (global) or word indices (shared).
///
/// In memory each op is a single [`PackedOp`] word, not this enum: the
/// trace streams are the simulator's dominant memory traffic (billions
/// of op units on a medium-graph sweep), and 8 bytes/op instead of the
/// enum's padded 16 halves what the record and replay loops pull
/// through the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Global-memory load of one 4-byte word at the given byte address.
    GLoad(u64),
    /// Global load served by the lane's recently-touched sectors (L1
    /// spatial reuse — e.g. the next element of a sequential scan). Counts
    /// as part of the warp's load request but adds no DRAM transaction.
    GLoadHit(u64),
    /// Global-memory store of one 4-byte word.
    GStore(u64),
    /// Global-memory atomic read-modify-write.
    GAtomic(u64),
    /// Shared-memory load at the given word index.
    SLoad(u32),
    /// Shared-memory store.
    SStore(u32),
    /// Shared-memory atomic read-modify-write.
    SAtomic(u32),
    /// A run of `n >= 1` consecutive arithmetic/logic instructions
    /// (comparisons, adds, address math...). [`LaneTrace::push_compute`]
    /// merges adjacent runs, so a merge loop that calls
    /// `lane.compute(1)` per iteration between loads still records one
    /// word per run rather than one per instruction.
    Compute(u32),
    /// Warp-reconvergence marker (`__syncwarp` / the implicit branch
    /// re-join at the bottom of a loop): lanes that reach it wait for
    /// every other lane, re-aligning the lockstep replay. Costs nothing
    /// by itself; the cost is the stall of the lanes that arrive early.
    Converge,
}

// Tag order is load-bearing: the replay gather loop treats every tag
// below `TAG_COMPUTE` as a memory op and uses the tag directly as the
// index of its per-kind address list, so the seven memory kinds must
// stay contiguous from zero.
pub(crate) const TAG_GLOAD: u64 = 0;
pub(crate) const TAG_GLOAD_HIT: u64 = 1;
pub(crate) const TAG_GSTORE: u64 = 2;
pub(crate) const TAG_GATOMIC: u64 = 3;
pub(crate) const TAG_SLOAD: u64 = 4;
pub(crate) const TAG_SSTORE: u64 = 5;
pub(crate) const TAG_SATOMIC: u64 = 6;
pub(crate) const TAG_COMPUTE: u64 = 7;
pub(crate) const TAG_CONVERGE: u64 = 8;

/// One trace word: `payload << 4 | tag`. 60 payload bits hold any
/// simulated device address (device memory is orders of magnitude
/// smaller), a shared word index, or a compute run length. Compute runs
/// merge by adding `n << 4` directly to the word; the run length reads
/// back modulo 2^32, exactly the wrapping the unpacked `u32` run had.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedOp(u64);

impl PackedOp {
    #[inline]
    pub fn pack(op: Op) -> Self {
        let (tag, payload) = match op {
            Op::GLoad(a) => (TAG_GLOAD, a),
            Op::GLoadHit(a) => (TAG_GLOAD_HIT, a),
            Op::GStore(a) => (TAG_GSTORE, a),
            Op::GAtomic(a) => (TAG_GATOMIC, a),
            Op::SLoad(i) => (TAG_SLOAD, i as u64),
            Op::SStore(i) => (TAG_SSTORE, i as u64),
            Op::SAtomic(i) => (TAG_SATOMIC, i as u64),
            Op::Compute(n) => (TAG_COMPUTE, n as u64),
            Op::Converge => (TAG_CONVERGE, 0),
        };
        debug_assert!(payload < 1 << 60, "address beyond the packed range");
        PackedOp(payload << 4 | tag)
    }

    /// The raw packed word (`payload << 4 | tag`). The replay gather
    /// loop dispatches on the tag bits and shifts the payload in place
    /// rather than materializing an [`Op`] per trace word.
    #[inline]
    pub(crate) fn word(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn unpack(self) -> Op {
        let payload = self.0 >> 4;
        match self.0 & 0xf {
            TAG_GLOAD => Op::GLoad(payload),
            TAG_GLOAD_HIT => Op::GLoadHit(payload),
            TAG_GSTORE => Op::GStore(payload),
            TAG_GATOMIC => Op::GAtomic(payload),
            TAG_SLOAD => Op::SLoad(payload as u32),
            TAG_SSTORE => Op::SStore(payload as u32),
            TAG_SATOMIC => Op::SAtomic(payload as u32),
            TAG_COMPUTE => Op::Compute(payload as u32),
            TAG_CONVERGE => Op::Converge,
            tag => unreachable!("corrupt trace word: tag {tag}"),
        }
    }
}

/// The recorded instruction stream of one lane within one phase.
#[derive(Debug, Default, Clone)]
pub struct LaneTrace {
    pub ops: Vec<PackedOp>,
}

impl LaneTrace {
    /// Build a trace from logical ops (tests and benchmarks).
    #[allow(dead_code)]
    pub fn from_ops(ops: &[Op]) -> Self {
        LaneTrace {
            ops: ops.iter().map(|&op| PackedOp::pack(op)).collect(),
        }
    }

    #[inline]
    pub fn push(&mut self, op: Op) {
        self.ops.push(PackedOp::pack(op));
    }

    /// Record `n` arithmetic instructions, merging with a trailing
    /// compute run so adjacent arithmetic collapses into one trace word.
    /// `n == 0` records nothing (the `Compute(n)` invariant is `n >= 1`).
    #[inline]
    pub fn push_compute(&mut self, n: u32) {
        if n == 0 {
            return;
        }
        if let Some(last) = self.ops.last_mut() {
            if last.0 & 0xf == TAG_COMPUTE {
                last.0 += (n as u64) << 4;
                return;
            }
        }
        self.ops.push(PackedOp::pack(Op::Compute(n)));
    }

    /// Number of recorded ops (kept with `is_empty` for symmetry).
    #[allow(dead_code)]
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the lane recorded no ops.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    pub fn clear(&mut self) {
        self.ops.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logical(t: &LaneTrace) -> Vec<Op> {
        t.ops.iter().map(|w| w.unpack()).collect()
    }

    #[test]
    fn push_compute_merges_adjacent_runs() {
        let mut t = LaneTrace::default();
        t.push_compute(1);
        t.push_compute(3);
        assert_eq!(logical(&t), vec![Op::Compute(4)]);
        t.push(Op::GLoad(0));
        t.push_compute(2);
        t.push_compute(0); // no-op
        assert_eq!(
            logical(&t),
            vec![Op::Compute(4), Op::GLoad(0), Op::Compute(2)]
        );
    }

    #[test]
    fn pack_round_trips_every_variant() {
        for op in [
            Op::GLoad(0),
            Op::GLoad((1 << 40) + 12),
            Op::GLoadHit(652),
            Op::GStore(96),
            Op::GAtomic(1 << 59 | 4),
            Op::SLoad(0),
            Op::SStore(u32::MAX),
            Op::SAtomic(31),
            Op::Compute(1),
            Op::Compute(u32::MAX),
            Op::Converge,
        ] {
            assert_eq!(PackedOp::pack(op).unpack(), op);
        }
    }
}
