//! Kernel-side helpers shared by the implementations: warp reduction of
//! per-lane triangle counts and traced binary search over device-resident
//! sorted neighbour lists.

use gpu_sim::{BufId, LaneCtx};

/// Number of shuffle steps in a 32-lane tree reduction.
const SHFL_STEPS: u32 = 5;

/// Warp-reduce `value` and add it to `counter[idx]`.
///
/// Models what every published kernel does at the end: a
/// `__shfl_down_sync` tree reduction (5 steps, all lanes active) followed
/// by a single `atomicAdd` from lane 0. The *value* contributed by every
/// lane is applied exactly (via the untraced backchannel) so counts stay
/// correct, while the modeled cost is one atomic per warp rather than 32
/// serialized ones.
pub fn warp_reduce_add(lane: &mut LaneCtx, counter: BufId, idx: usize, value: u32) {
    lane.compute(SHFL_STEPS);
    if lane.lane_id() == 0 {
        lane.atomic_add_global(counter, idx, value);
    } else {
        lane.add_global_untraced(counter, idx, value);
    }
}

/// Traced binary search for `key` in the sorted global segment
/// `col[lo..hi)`. Each probe costs one global load plus one comparison.
pub fn bsearch_global(lane: &mut LaneCtx, col: BufId, mut lo: u32, mut hi: u32, key: u32) -> bool {
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let v = lane.ld_global(col, mid as usize);
        lane.compute(1);
        match v.cmp(&key) {
            std::cmp::Ordering::Equal => return true,
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
        }
    }
    false
}

/// Like [`bsearch_global`] but returns the insertion point (first index
/// with `col[i] >= key`) along with whether the key was found. Used by
/// GroupTC's resume-offset optimization.
pub fn bsearch_global_pos(
    lane: &mut LaneCtx,
    col: BufId,
    mut lo: u32,
    mut hi: u32,
    key: u32,
) -> (u32, bool) {
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let v = lane.ld_global(col, mid as usize);
        lane.compute(1);
        if v == key {
            return (mid, true);
        } else if v < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    (lo, false)
}

/// Traced binary search in a sorted *shared-memory* segment
/// `shared[lo..hi)`.
pub fn bsearch_shared(lane: &mut LaneCtx, mut lo: u32, mut hi: u32, key: u32) -> bool {
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let v = lane.ld_shared(mid as usize);
        lane.compute(1);
        match v.cmp(&key) {
            std::cmp::Ordering::Equal => return true,
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
        }
    }
    false
}

/// Binary search along cross-diagonal `d` of the merge matrix of
/// `a[0..an)` x `b[0..bn)`: returns `i` such that merging
/// `a[..i]`/`b[..d-i]` consumes exactly the first `d` elements of the
/// merge path. Each probe loads one element of each list.
pub fn diagonal_search(
    lane: &mut LaneCtx,
    col: BufId,
    a_base: u32,
    an: u32,
    b_base: u32,
    bn: u32,
    d: u32,
) -> u32 {
    let mut lo = d.saturating_sub(bn);
    let mut hi = d.min(an);
    while lo < hi {
        let i = lo + (hi - lo) / 2;
        let j = d - i - 1;
        // Compare a[i] against b[d - i - 1].
        let av = lane.ld_global(col, (a_base + i) as usize);
        let bv = lane.ld_global(col, (b_base + j) as usize);
        lane.compute(1);
        if av < bv {
            lo = i + 1;
        } else {
            hi = i;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Device, DeviceMem, KernelConfig};

    #[test]
    fn warp_reduce_add_is_exact_and_cheap() {
        let dev = Device::v100();
        let mut mem = DeviceMem::new(&dev);
        let counter = mem.alloc_zeroed(1, "counter").unwrap();
        let stats = dev
            .launch(&mem, KernelConfig::new(1, 64), |blk| {
                blk.phase(|lane| {
                    let v = lane.tid();
                    warp_reduce_add(lane, counter, 0, v);
                });
            })
            .unwrap();
        // Sum of 0..64.
        assert_eq!(mem.read_back(counter)[0], (0..64).sum::<u32>());
        // Two warps -> exactly two atomic requests.
        assert_eq!(stats.counters.global_atomic_requests, 2);
    }

    #[test]
    fn bsearch_global_finds_all_and_only_members() {
        let dev = Device::v100();
        let mut mem = DeviceMem::new(&dev);
        let data: Vec<u32> = vec![2, 3, 5, 7, 11, 13, 17, 19];
        let buf = mem.alloc_from_slice(&data, "sorted").unwrap();
        let hits = mem.alloc_zeroed(25, "hits").unwrap();
        dev.launch(&mem, KernelConfig::new(1, 32), |blk| {
            blk.phase(|lane| {
                let key = lane.tid();
                if key < 25 && bsearch_global(lane, buf, 0, 8, key) {
                    lane.st_global(hits, key as usize, 1);
                }
            });
        })
        .unwrap();
        let hit = mem.read_back(hits);
        for k in 0..25u32 {
            assert_eq!(hit[k as usize] == 1, data.contains(&k), "key {k}");
        }
    }

    #[test]
    fn bsearch_pos_reports_insertion_point() {
        let dev = Device::v100();
        let mut mem = DeviceMem::new(&dev);
        let data: Vec<u32> = vec![10, 20, 30];
        let buf = mem.alloc_from_slice(&data, "sorted").unwrap();
        let out = mem.alloc_zeroed(2, "out").unwrap();
        dev.launch(&mem, KernelConfig::new(1, 1), |blk| {
            blk.phase(|lane| {
                let (pos, found) = bsearch_global_pos(lane, buf, 0, 3, 20);
                lane.st_global(out, 0, pos);
                lane.st_global(out, 1, found as u32);
                let (pos25, found25) = bsearch_global_pos(lane, buf, 0, 3, 25);
                assert_eq!(pos25, 2);
                assert!(!found25);
            });
        })
        .unwrap();
        assert_eq!(mem.read_back(out), vec![1, 1]);
    }

    #[test]
    fn bsearch_shared_matches_global() {
        let dev = Device::v100();
        let mut mem = DeviceMem::new(&dev);
        let found = mem.alloc_zeroed(2, "found").unwrap();
        let cfg = KernelConfig::new(1, 1).with_shared_words(8);
        dev.launch(&mem, cfg, |blk| {
            blk.phase(|lane| {
                for (i, v) in [1u32, 4, 9, 16].iter().enumerate() {
                    lane.st_shared(i, *v);
                }
            });
            blk.phase(|lane| {
                let hit = bsearch_shared(lane, 0, 4, 9) as u32;
                lane.st_global(found, 0, hit);
                let miss = bsearch_shared(lane, 0, 4, 10) as u32;
                lane.st_global(found, 1, miss);
            });
        })
        .unwrap();
        assert_eq!(mem.read_back(found), vec![1, 0]);
    }
}
