//! The unified testing framework (Section IV): algorithm registry,
//! dataset preparation, the evaluation runner, and report formatting.

pub mod backend;
pub mod claims;
pub mod conformance;
pub mod csv;
pub mod partitioned;
pub mod registry;
pub mod report;
pub mod runner;
