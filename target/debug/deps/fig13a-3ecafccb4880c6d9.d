/root/repo/target/debug/deps/fig13a-3ecafccb4880c6d9.d: crates/tc-bench/src/bin/fig13a.rs Cargo.toml

/root/repo/target/debug/deps/libfig13a-3ecafccb4880c6d9.rmeta: crates/tc-bench/src/bin/fig13a.rs Cargo.toml

crates/tc-bench/src/bin/fig13a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
