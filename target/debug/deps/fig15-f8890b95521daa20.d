/root/repo/target/debug/deps/fig15-f8890b95521daa20.d: crates/tc-bench/src/bin/fig15.rs

/root/repo/target/debug/deps/libfig15-f8890b95521daa20.rmeta: crates/tc-bench/src/bin/fig15.rs

crates/tc-bench/src/bin/fig15.rs:
