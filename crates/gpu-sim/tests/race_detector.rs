//! Barrier-semantics coverage for the phase-based data-race detector:
//! known-racy toy kernels must fail with [`SimError::DataRace`], and
//! their barrier-synchronized twins must pass with a nonzero
//! `race_checks` count proving the detector actually ran.

use gpu_sim::{Device, DeviceMem, KernelConfig, RaceKind, SimError};

/// The classic missing-barrier bug: every lane stores its tid to a
/// shared slot and immediately reads its *neighbour's* slot in the same
/// phase. The simulator's sequential lane order would happily return
/// deterministic garbage; the detector must refuse.
fn racy_neighbour_exchange(blk: &mut gpu_sim::BlockCtx<'_>) {
    blk.phase(|lane| {
        let tid = lane.tid();
        let n = lane.block_dim();
        lane.st_shared(tid as usize, tid * 10);
        // Missing __syncthreads() here.
        let neighbour = ((tid + 1) % n) as usize;
        lane.ld_shared(neighbour);
    });
}

/// The corrected twin: producers and consumers separated by a barrier
/// (phase boundary).
fn synced_neighbour_exchange(blk: &mut gpu_sim::BlockCtx<'_>) {
    blk.phase(|lane| {
        let tid = lane.tid();
        lane.st_shared(tid as usize, tid * 10);
    });
    blk.phase(|lane| {
        let tid = lane.tid();
        let n = lane.block_dim();
        let neighbour = ((tid + 1) % n) as usize;
        let v = lane.ld_shared(neighbour);
        assert_eq!(v, ((tid + 1) % n) * 10);
    });
}

#[test]
fn racy_kernel_fails_with_data_race() {
    let dev = Device::v100();
    let mem = DeviceMem::new(&dev);
    let cfg = KernelConfig::new(1, 32)
        .with_shared_words(32)
        .with_race_detection(true);
    let err = dev.launch(&mem, cfg, racy_neighbour_exchange).unwrap_err();
    match err {
        SimError::DataRace {
            kind,
            lanes,
            pc_hint,
            ..
        } => {
            assert_eq!(kind, RaceKind::SharedReadWrite);
            assert_ne!(lanes.0, lanes.1, "conflict must involve two lanes");
            assert!(pc_hint.contains("phase 1"), "bad hint: {pc_hint}");
        }
        other => panic!("expected DataRace, got {other}"),
    }
}

#[test]
fn synchronized_twin_passes_and_was_actually_checked() {
    let dev = Device::v100();
    let mem = DeviceMem::new(&dev);
    let cfg = KernelConfig::new(2, 32)
        .with_shared_words(32)
        .with_race_detection(true);
    let stats = dev.launch(&mem, cfg, synced_neighbour_exchange).unwrap();
    assert!(
        stats.counters.race_checks > 0,
        "detector must have inspected the accesses"
    );
    assert_eq!(stats.counters.races_detected, 0);
}

#[test]
fn write_after_foreign_read_is_caught_regardless_of_lane_order() {
    // Lane 0 reads slot 5 first; lane 1 writes it later in the same
    // phase. Hardware could have ordered the write before the read, so
    // this must race even though the simulated order looks harmless.
    let dev = Device::v100();
    let mem = DeviceMem::new(&dev);
    let cfg = KernelConfig::new(1, 2)
        .with_shared_words(8)
        .with_race_detection(true);
    let err = dev
        .launch(&mem, cfg, |blk| {
            blk.phase(|lane| {
                if lane.tid() == 0 {
                    lane.ld_shared(5);
                } else {
                    lane.st_shared(5, 42);
                }
            });
        })
        .unwrap_err();
    assert!(
        matches!(
            err,
            SimError::DataRace {
                kind: RaceKind::SharedReadWrite,
                lanes: (0, 1),
                ..
            }
        ),
        "got {err}"
    );
}

#[test]
fn conflicting_shared_writes_race_but_same_value_flags_do_not() {
    let dev = Device::v100();
    let mem = DeviceMem::new(&dev);
    let cfg = KernelConfig::new(1, 32)
        .with_shared_words(4)
        .with_race_detection(true);

    // Many lanes raising the same flag: the benign idiom must pass.
    let stats = dev
        .launch(&mem, cfg, |blk| {
            blk.phase(|lane| {
                lane.st_shared(0, 1);
            });
        })
        .unwrap();
    assert_eq!(stats.counters.races_detected, 0);

    // Distinct values: schedule-dependent on hardware, must fail.
    let err = dev
        .launch(&mem, cfg, |blk| {
            blk.phase(|lane| {
                let v = lane.tid();
                lane.st_shared(0, v);
            });
        })
        .unwrap_err();
    assert!(matches!(
        err,
        SimError::DataRace {
            kind: RaceKind::SharedWriteWrite,
            ..
        }
    ));
}

#[test]
fn shared_atomics_are_exempt_but_mixing_with_plain_stores_races() {
    let dev = Device::v100();
    let mem = DeviceMem::new(&dev);
    let cfg = KernelConfig::new(1, 64)
        .with_shared_words(2)
        .with_race_detection(true);

    // All lanes atomicAdd one slot: fine.
    let stats = dev
        .launch(&mem, cfg, |blk| {
            blk.phase(|lane| {
                lane.atomic_add_shared(0, 1);
            });
        })
        .unwrap();
    assert_eq!(stats.counters.races_detected, 0);

    // Half the lanes atomicAdd, one lane plain-stores: race.
    let err = dev
        .launch(&mem, cfg, |blk| {
            blk.phase(|lane| {
                if lane.tid() == 7 {
                    lane.st_shared(0, 999);
                } else {
                    lane.atomic_add_shared(0, 1);
                }
            });
        })
        .unwrap_err();
    assert!(matches!(err, SimError::DataRace { .. }), "got {err}");
}

#[test]
fn plain_global_stores_race_within_a_block_but_atomics_do_not() {
    let dev = Device::v100();
    let mut mem = DeviceMem::new(&dev);
    let buf = mem.alloc_zeroed(4, "accum").unwrap();
    let cfg = KernelConfig::new(1, 32).with_race_detection(true);

    // atomicAdd from every lane: exempt.
    let stats = dev
        .launch(&mem, cfg, |blk| {
            blk.phase(|lane| {
                lane.atomic_add_global(buf, 0, 1);
            });
        })
        .unwrap();
    assert_eq!(stats.counters.races_detected, 0);
    assert_eq!(mem.read_back(buf)[0], 32);

    // Plain stores of distinct values to one word from every lane: the
    // CUDA bug the atomics were avoiding.
    let err = dev
        .launch(&mem, cfg, |blk| {
            blk.phase(|lane| {
                let v = lane.tid() + 1;
                lane.st_global(buf, 1, v);
            });
        })
        .unwrap_err();
    match err {
        SimError::DataRace { kind, pc_hint, .. } => {
            assert_eq!(kind, RaceKind::GlobalWriteWrite);
            assert!(pc_hint.contains("`accum`[1]"), "bad hint: {pc_hint}");
        }
        other => panic!("expected DataRace, got {other}"),
    }
}

#[test]
fn detection_off_by_default_and_costs_nothing() {
    let dev = Device::v100();
    let mem = DeviceMem::new(&dev);
    // Default KernelConfig: the racy kernel runs to completion (the
    // pre-detector behaviour benchmarks rely on) and no checks happen.
    let cfg = KernelConfig::new(1, 32).with_shared_words(32);
    let stats = dev.launch(&mem, cfg, racy_neighbour_exchange).unwrap();
    assert_eq!(stats.counters.race_checks, 0);
    assert_eq!(stats.counters.races_detected, 0);
}

#[test]
fn device_can_force_detection_for_every_launch() {
    // Algorithms build their own KernelConfigs internally; a harness can
    // still run them under the detector by forcing it at device level.
    let dev = Device::v100().with_race_detection();
    let mem = DeviceMem::new(&dev);
    let cfg = KernelConfig::new(1, 32).with_shared_words(32); // race_detect: false
    let err = dev.launch(&mem, cfg, racy_neighbour_exchange).unwrap_err();
    assert!(matches!(err, SimError::DataRace { .. }));
}

#[test]
fn race_error_message_is_actionable() {
    let dev = Device::v100();
    let mem = DeviceMem::new(&dev);
    let cfg = KernelConfig::new(1, 4)
        .with_shared_words(8)
        .with_race_detection(true);
    let err = dev.launch(&mem, cfg, racy_neighbour_exchange).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("data race"), "{msg}");
    assert!(msg.contains("shared word"), "{msg}");
    assert!(msg.contains("phase 1"), "{msg}");
}
